//! Random polynomial sampling: uniform ring elements, ternary secrets, and Gaussian errors.

use fab_rns::{Representation, RnsBasis, RnsPolynomial};
use rand::Rng;

/// Samples a uniform element of `R_Q` (independent uniform residues per limb, which is exactly
/// the CRT image of a uniform element modulo the basis product).
pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, basis: &RnsBasis) -> RnsPolynomial {
    let degree = basis.degree();
    let limbs = basis
        .moduli()
        .iter()
        .map(|m| (0..degree).map(|_| rng.gen_range(0..m.value())).collect())
        .collect();
    RnsPolynomial::from_limbs(limbs, Representation::Coefficient)
}

/// Samples a uniform ternary polynomial with coefficients in `{-1, 0, 1}` as signed values.
pub fn sample_ternary_coeffs<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> Vec<i64> {
    (0..degree).map(|_| rng.gen_range(-1..=1)).collect()
}

/// Samples a sparse ternary polynomial with exactly `hamming_weight` nonzero (±1) coefficients.
///
/// # Panics
///
/// Panics if `hamming_weight > degree`.
pub fn sample_sparse_ternary_coeffs<R: Rng + ?Sized>(
    rng: &mut R,
    degree: usize,
    hamming_weight: usize,
) -> Vec<i64> {
    assert!(hamming_weight <= degree);
    let mut coeffs = vec![0i64; degree];
    let mut placed = 0;
    while placed < hamming_weight {
        let idx = rng.gen_range(0..degree);
        if coeffs[idx] == 0 {
            coeffs[idx] = if rng.gen_bool(0.5) { 1 } else { -1 };
            placed += 1;
        }
    }
    coeffs
}

/// Samples a rounded-Gaussian error polynomial with the given standard deviation, as signed
/// coefficients. Uses the Box–Muller transform; the tails are clipped at ±6σ, matching common
/// FHE library practice.
pub fn sample_gaussian_coeffs<R: Rng + ?Sized>(
    rng: &mut R,
    degree: usize,
    std_dev: f64,
) -> Vec<i64> {
    let mut out = Vec::with_capacity(degree);
    while out.len() < degree {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        for value in [radius * theta.cos(), radius * theta.sin()] {
            if out.len() < degree {
                let scaled = (value * std_dev).round();
                let clipped = scaled.clamp(-6.0 * std_dev, 6.0 * std_dev);
                out.push(clipped as i64);
            }
        }
    }
    out
}

/// Lifts signed coefficients into an RNS polynomial over the given basis.
pub fn lift_signed(coeffs: &[i64], basis: &RnsBasis) -> RnsPolynomial {
    RnsPolynomial::from_signed_coeffs(coeffs, basis, Representation::Coefficient)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn rng() -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(12345)
    }

    #[test]
    fn uniform_sampling_stays_in_range_and_is_not_constant() {
        let basis = RnsBasis::generate(1 << 8, 40, 3).unwrap();
        let poly = sample_uniform(&mut rng(), &basis);
        for (i, m) in basis.moduli().iter().enumerate() {
            assert!(poly.limb(i).iter().all(|&c| c < m.value()));
            let first = poly.limb(i)[0];
            assert!(poly.limb(i).iter().any(|&c| c != first));
        }
    }

    #[test]
    fn ternary_sampling_has_only_ternary_values() {
        let coeffs = sample_ternary_coeffs(&mut rng(), 4096);
        assert!(coeffs.iter().all(|&c| (-1..=1).contains(&c)));
        // All three values should occur in a long enough sample.
        for target in [-1i64, 0, 1] {
            assert!(coeffs.contains(&target));
        }
    }

    #[test]
    fn sparse_ternary_has_exact_weight() {
        let coeffs = sample_sparse_ternary_coeffs(&mut rng(), 1024, 64);
        assert_eq!(coeffs.iter().filter(|&&c| c != 0).count(), 64);
        assert!(coeffs.iter().all(|&c| (-1..=1).contains(&c)));
    }

    #[test]
    fn gaussian_sampling_has_reasonable_moments() {
        let std_dev = 3.2;
        let coeffs = sample_gaussian_coeffs(&mut rng(), 1 << 14, std_dev);
        let n = coeffs.len() as f64;
        let mean = coeffs.iter().map(|&c| c as f64).sum::<f64>() / n;
        let var = coeffs
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.2, "mean {mean} too far from zero");
        assert!(
            (var.sqrt() - std_dev).abs() < 0.5,
            "std {} too far from {std_dev}",
            var.sqrt()
        );
        assert!(coeffs
            .iter()
            .all(|&c| (c as f64).abs() <= 6.0 * std_dev + 1.0));
    }

    #[test]
    fn lift_signed_matches_per_limb_reduction() {
        let basis = RnsBasis::generate(64, 30, 2).unwrap();
        let coeffs: Vec<i64> = (0..64).map(|i| i - 32).collect();
        let poly = lift_signed(&coeffs, &basis);
        for (i, m) in basis.moduli().iter().enumerate() {
            for (j, &c) in coeffs.iter().enumerate() {
                assert_eq!(poly.limb(i)[j], m.reduce_i64(c));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let basis = RnsBasis::generate(64, 30, 2).unwrap();
        let a = sample_uniform(&mut ChaCha20Rng::seed_from_u64(7), &basis);
        let b = sample_uniform(&mut ChaCha20Rng::seed_from_u64(7), &basis);
        assert_eq!(a, b);
    }
}
