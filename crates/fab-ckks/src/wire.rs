//! The shared validated-blob codec behind every serialized artifact in the workspace.
//!
//! PR 8 introduced a defensive wire format for evaluation keys: a fixed header carrying a
//! magic/version word and an FNV-1a content checksum, followed by geometry words validated
//! with checked arithmetic before any allocation. Ciphertext snapshots and the serving
//! layer's request journal need exactly the same discipline, so the header logic lives here
//! once and every blob kind ([`SwitchingKey`](crate::SwitchingKey) blobs, `FABCTX`/`FABPTX`
//! snapshots, `FABJNL` journal records) is a [`BlobSpec`] over the same audited code path.
//!
//! Layout shared by every blob:
//!
//! ```text
//! word 0   magic (top 48 bits) | format version (low 16 bits)
//! word 1   FNV-1a 64 checksum over every byte after this word
//! word 2…  kind-specific geometry words, then the payload
//! ```
//!
//! All words are `u64` little-endian. The checksum covers the geometry words, so a bit flip
//! anywhere outside the magic word itself is detected before geometry is trusted; geometry
//! that passes the checksum is *still* validated by the caller (zero dimensions, checked-math
//! size recomputation) because a checksum authenticates accidental corruption, not intent.
//!
//! [`BlobWriter`]/[`BlobReader`] fail with [`WireError`]; callers map that onto their own
//! typed rejection ([`CkksError::CorruptKey`](crate::CkksError::CorruptKey),
//! [`CkksError::CorruptSnapshot`](crate::CkksError::CorruptSnapshot), fab-serve's
//! `CorruptJournal`) so the failure domain stays visible in the type.

use std::fmt;

use crate::CkksParams;

/// Bytes of the generic blob header: the magic/version word plus the checksum word.
pub const HEADER_BYTES: usize = 16;

/// Identity of one blob kind: its magic constant (top 48 bits set, low 16 zero), the current
/// format version (carried in the low 16 bits of word 0), and a human-readable kind name used
/// in error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobSpec {
    /// Format tag occupying the top 48 bits of header word 0 (low 16 bits must be zero).
    pub magic: u64,
    /// Format version carried in the low 16 bits of header word 0.
    pub version: u64,
    /// Kind name for error messages ("switching key", "ciphertext snapshot", …).
    pub kind: &'static str,
}

/// A blob-level validation failure, before the caller maps it onto its typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit over `bytes` — the content checksum stored in header word 1. Deliberately a
/// non-cryptographic integrity check: the threat model is bit rot and torn writes, not an
/// adversary, and FNV keeps deserialization dependency-free and branch-predictable.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A 64-bit fingerprint of every parameter that affects ciphertext geometry or semantics.
/// Snapshots and journal records embed it so a blob written under one parameter set is
/// rejected (typed, not garbage) when opened under another.
pub fn param_fingerprint(params: &CkksParams) -> u64 {
    let mut bytes = Vec::with_capacity(9 * 8);
    for word in [
        params.log_n as u64,
        params.scale_bits as u64,
        params.first_prime_bits as u64,
        params.max_level as u64,
        params.dnum as u64,
        params.fft_iter as u64,
        params.error_std.to_bits(),
        // Distinguish None from Some(0) without a separate tag word.
        params.secret_hamming_weight.map_or(0, |h| h as u64 + 1),
        params.security_bits as u64,
    ] {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    checksum(&bytes)
}

/// Checked product of geometry factors; `None` on overflow. Callers treat `None` as
/// corruption — a header whose implied size overflows `usize` cannot describe a real blob.
pub fn checked_product(factors: &[usize]) -> Option<usize> {
    factors
        .iter()
        .try_fold(1usize, |acc, &f| acc.checked_mul(f))
}

/// Serializes one blob: writes the header, accumulates geometry words and payload, and
/// patches the checksum on [`BlobWriter::finish`].
#[derive(Debug)]
pub struct BlobWriter {
    bytes: Vec<u8>,
}

impl BlobWriter {
    /// Starts a blob of the given kind. `capacity` is a byte-size hint for the allocation.
    pub fn new(spec: BlobSpec, capacity: usize) -> Self {
        debug_assert_eq!(spec.magic & 0xFFFF, 0, "magic must leave the version bits");
        debug_assert!(spec.version <= 0xFFFF, "version must fit in 16 bits");
        let mut bytes = Vec::with_capacity(capacity.max(HEADER_BYTES));
        bytes.extend_from_slice(&(spec.magic | spec.version).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder
        Self { bytes }
    }

    /// Appends one `u64` LE word (geometry or payload).
    pub fn push_word(&mut self, word: u64) {
        self.bytes.extend_from_slice(&word.to_le_bytes());
    }

    /// Appends an `f64` as its LE bit pattern (bit-exact round trip, no float parsing).
    pub fn push_f64(&mut self, value: f64) {
        self.push_word(value.to_bits());
    }

    /// Appends a slice of `u64` LE words.
    pub fn push_words(&mut self, words: &[u64]) {
        for &word in words {
            self.bytes.extend_from_slice(&word.to_le_bytes());
        }
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends a nested blob: a `u64` LE byte-length word followed by the bytes.
    pub fn push_blob(&mut self, blob: &[u8]) {
        self.push_word(blob.len() as u64);
        self.push_bytes(blob);
    }

    /// Bytes written so far (header included).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing beyond the header has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.len() == HEADER_BYTES
    }

    /// Patches the checksum over everything after the checksum word and returns the blob.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = checksum(&self.bytes[HEADER_BYTES..]);
        self.bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        self.bytes
    }
}

/// Validates and sequentially decodes one blob written by [`BlobWriter`].
#[derive(Debug)]
pub struct BlobReader<'a> {
    spec: BlobSpec,
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> BlobReader<'a> {
    /// Opens a blob: checks the header length, magic, version and content checksum before
    /// any field is readable.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the blob is shorter than the header, the magic or version
    /// word is wrong, or the checksum does not match (bit flips anywhere past word 0).
    pub fn open(spec: BlobSpec, bytes: &'a [u8]) -> Result<Self, WireError> {
        let kind = spec.kind;
        if bytes.len() < HEADER_BYTES {
            return Err(WireError {
                reason: format!(
                    "{kind} blob of {} bytes is shorter than the {HEADER_BYTES}-byte header",
                    bytes.len()
                ),
            });
        }
        let tag = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        if tag & !0xFFFF != spec.magic {
            return Err(WireError {
                reason: format!("bad magic word {tag:#018x} for {kind} blob"),
            });
        }
        let version = tag & 0xFFFF;
        if version != spec.version {
            return Err(WireError {
                reason: format!(
                    "unsupported {kind} format version {version} (expected {})",
                    spec.version
                ),
            });
        }
        let stored = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let computed = checksum(&bytes[HEADER_BYTES..]);
        if computed != stored {
            return Err(WireError {
                reason: format!(
                    "{kind} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                ),
            });
        }
        Ok(Self {
            spec,
            bytes,
            cursor: HEADER_BYTES,
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.cursor
    }

    /// Reads one `u64` LE word.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when fewer than 8 bytes remain.
    pub fn read_word(&mut self) -> Result<u64, WireError> {
        let bytes = self.read_bytes(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads one `f64` stored as its LE bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when fewer than 8 bytes remain.
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.read_word()?))
    }

    /// Reads `count` `u64` LE words.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when fewer than `count * 8` bytes remain.
    pub fn read_words(&mut self, count: usize) -> Result<Vec<u64>, WireError> {
        let byte_len = count.checked_mul(8).ok_or_else(|| self.truncated(count))?;
        let bytes = self.read_bytes(byte_len)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads `count` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when fewer than `count` bytes remain.
    pub fn read_bytes(&mut self, count: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < count {
            return Err(WireError {
                reason: format!(
                    "truncated {} blob: wanted {count} more bytes, {} remain",
                    self.spec.kind,
                    self.remaining()
                ),
            });
        }
        let slice = &self.bytes[self.cursor..self.cursor + count];
        self.cursor += count;
        Ok(slice)
    }

    /// Reads a nested blob written by [`BlobWriter::push_blob`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the length word is missing or overruns the blob.
    pub fn read_blob(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_word()?;
        let len = usize::try_from(len).map_err(|_| WireError {
            reason: format!(
                "nested blob length {len} in {} blob overflows usize",
                self.spec.kind
            ),
        })?;
        self.read_bytes(len)
    }

    /// Asserts the remaining payload is exactly `words` `u64` words — the checked-math size
    /// validation every geometry header must pass before its payload is trusted.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when `words * 8` overflows or the remaining length differs
    /// ("truncated"/"oversized", matching the key codec's historical wording).
    pub fn expect_payload_words(&self, words: usize) -> Result<(), WireError> {
        let expected = words.checked_mul(8).ok_or_else(|| WireError {
            reason: format!("{} header geometry overflows", self.spec.kind),
        })?;
        if self.remaining() != expected {
            let kind = if self.remaining() < expected {
                "truncated"
            } else {
                "oversized"
            };
            return Err(WireError {
                reason: format!(
                    "{kind} {} blob: {} payload bytes, header implies {expected}",
                    self.spec.kind,
                    self.remaining()
                ),
            });
        }
        Ok(())
    }

    /// Asserts every byte has been consumed (no trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when unconsumed bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError {
                reason: format!(
                    "oversized {} blob: {} trailing bytes",
                    self.spec.kind,
                    self.remaining()
                ),
            });
        }
        Ok(())
    }

    fn truncated(&self, words: usize) -> WireError {
        WireError {
            reason: format!(
                "truncated {} blob: wanted {words} more words",
                self.spec.kind
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: BlobSpec = BlobSpec {
        magic: 0x5445_5354_4242_0000,
        version: 3,
        kind: "test",
    };

    fn sample() -> Vec<u8> {
        let mut w = BlobWriter::new(SPEC, 64);
        assert!(w.is_empty());
        w.push_word(7);
        w.push_f64(2.5);
        w.push_words(&[1, 2, 3]);
        w.push_blob(&[0xAA, 0xBB]);
        assert!(!w.is_empty());
        w.finish()
    }

    #[test]
    fn round_trips_every_field_kind() {
        let blob = sample();
        let mut r = BlobReader::open(SPEC, &blob).unwrap();
        assert_eq!(r.read_word().unwrap(), 7);
        assert_eq!(r.read_f64().unwrap(), 2.5);
        assert_eq!(r.read_words(3).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.read_blob().unwrap(), &[0xAA, 0xBB]);
        assert_eq!(r.remaining(), 0);
        r.finish().unwrap();
    }

    #[test]
    fn header_validation_rejects_each_failure_mode() {
        let blob = sample();
        // Shorter than the header.
        assert!(BlobReader::open(SPEC, &blob[..8]).is_err());
        // Wrong magic.
        let mut bad = blob.clone();
        bad[7] ^= 0x01;
        assert!(BlobReader::open(SPEC, &bad).is_err());
        // Wrong version.
        let mut bad = blob.clone();
        bad[0] = bad[0].wrapping_add(1);
        assert!(BlobReader::open(SPEC, &bad).is_err());
        // Any payload bit flip trips the checksum.
        for i in HEADER_BYTES..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x80;
            assert!(BlobReader::open(SPEC, &bad).is_err(), "byte {i}");
        }
        // A checksum-word flip mismatches too.
        let mut bad = blob.clone();
        bad[12] ^= 0x10;
        assert!(BlobReader::open(SPEC, &bad).is_err());
    }

    #[test]
    fn payload_size_and_trailing_bytes_are_enforced() {
        let mut w = BlobWriter::new(SPEC, 0);
        w.push_words(&[1, 2]);
        let blob = w.finish();
        let r = BlobReader::open(SPEC, &blob).unwrap();
        r.expect_payload_words(2).unwrap();
        assert!(r.expect_payload_words(3).is_err());
        assert!(r.expect_payload_words(1).is_err());
        assert!(r.expect_payload_words(usize::MAX).is_err(), "overflow");
        assert!(r.finish().is_err(), "unconsumed bytes");

        let mut r = BlobReader::open(SPEC, &blob).unwrap();
        assert!(r.read_words(3).is_err(), "reads past the end fail typed");
        assert!(r.read_bytes(17).is_err());
        let mut r = BlobReader::open(SPEC, &blob).unwrap();
        let _ = r.read_word();
        assert!(r.read_blob().is_err(), "length word overruns the payload");
    }

    #[test]
    fn checked_product_flags_overflow() {
        assert_eq!(checked_product(&[3, 4, 5]), Some(60));
        assert_eq!(checked_product(&[]), Some(1));
        assert_eq!(checked_product(&[usize::MAX, 2]), None);
    }

    #[test]
    fn param_fingerprint_distinguishes_parameter_sets() {
        let a = CkksParams::testing();
        let mut b = a.clone();
        b.max_level += 1;
        let mut c = a.clone();
        c.secret_hamming_weight = c.secret_hamming_weight.map(|h| h + 2);
        assert_eq!(param_fingerprint(&a), param_fingerprint(&a));
        assert_ne!(param_fingerprint(&a), param_fingerprint(&b));
        assert_ne!(param_fingerprint(&a), param_fingerprint(&c));
    }
}
