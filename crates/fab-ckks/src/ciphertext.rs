//! Plaintext and ciphertext containers, with validated `FABCTX`/`FABPTX` snapshots.
//!
//! Snapshots exist for durability, not transport: the serving layer's request journal and
//! fab-lr's training checkpoints persist ciphertexts across a process crash and must reject
//! anything a torn write or bit rot could have left behind. Both snapshot kinds ride the
//! shared [`wire`] codec (magic/version word, FNV-1a checksum, checked-math geometry) and
//! embed the opening context's [`wire::param_fingerprint`], so a blob written under one
//! parameter set fails typed ([`CkksError::CorruptSnapshot`]) under another instead of
//! decoding into garbage polynomials.

use fab_rns::{Representation, RnsPolynomial};

use crate::wire::{self, BlobReader, BlobSpec, BlobWriter};
use crate::{CkksContext, CkksError, CkksParams, Result};

/// Ciphertext snapshot identity: ASCII `FABCTX` in the top 48 bits, version 1.
const CT_SPEC: BlobSpec = BlobSpec {
    magic: 0x4641_4243_5458_0000,
    version: 1,
    kind: "ciphertext snapshot",
};

/// Plaintext snapshot identity: ASCII `FABPTX` in the top 48 bits, version 1.
const PT_SPEC: BlobSpec = BlobSpec {
    magic: 0x4641_4250_5458_0000,
    version: 1,
    kind: "plaintext snapshot",
};

/// Geometry words after the generic header: fingerprint, degree, limb count, level, scale
/// bits, domain tags.
const SNAPSHOT_GEOMETRY_WORDS: usize = 6;

fn corrupt(e: wire::WireError) -> CkksError {
    CkksError::CorruptSnapshot { reason: e.reason }
}

/// Exact size of [`Ciphertext::to_bytes`]'s output for a ciphertext at `level` under
/// `params`: the 16-byte wire header, six geometry words, then `2 · (level+1) · N` payload
/// words. Journal and checkpoint size budgeting is derived from this closed form.
pub fn ciphertext_snapshot_bytes(params: &CkksParams, level: usize) -> usize {
    wire::HEADER_BYTES + SNAPSHOT_GEOMETRY_WORDS * 8 + 2 * (level + 1) * params.degree() * 8
}

/// Shared validation for both snapshot kinds: reads the six geometry words, checks them
/// against the opening context, and returns `(limb_count, degree, scale, level, domains)`.
fn read_snapshot_geometry(
    reader: &mut BlobReader<'_>,
    ctx: &CkksContext,
    components: usize,
) -> Result<(usize, usize, f64, usize, u64)> {
    let fingerprint = reader.read_word().map_err(corrupt)?;
    let expected_fp = wire::param_fingerprint(ctx.params());
    if fingerprint != expected_fp {
        return Err(CkksError::CorruptSnapshot {
            reason: format!(
                "parameter fingerprint {fingerprint:#018x} does not match the \
                 opening context's {expected_fp:#018x}"
            ),
        });
    }
    let degree = reader.read_word().map_err(corrupt)? as usize;
    let limb_count = reader.read_word().map_err(corrupt)? as usize;
    let level = reader.read_word().map_err(corrupt)? as usize;
    let scale = reader.read_f64().map_err(corrupt)?;
    let domains = reader.read_word().map_err(corrupt)?;
    if degree != ctx.degree() {
        return Err(CkksError::CorruptSnapshot {
            reason: format!("degree {degree} but context degree {}", ctx.degree()),
        });
    }
    if level > ctx.params().max_level {
        return Err(CkksError::CorruptSnapshot {
            reason: format!("level {level} exceeds max level {}", ctx.params().max_level),
        });
    }
    if limb_count != level + 1 {
        return Err(CkksError::CorruptSnapshot {
            reason: format!("limb count {limb_count} inconsistent with level {level}"),
        });
    }
    if !scale.is_finite() || scale <= 0.0 {
        return Err(CkksError::CorruptSnapshot {
            reason: format!("scale {scale:e} is not a finite positive value"),
        });
    }
    if domains >> components != 0 {
        return Err(CkksError::CorruptSnapshot {
            reason: format!("domain tag word {domains:#x} has unknown bits set"),
        });
    }
    let poly_words =
        wire::checked_product(&[degree, limb_count]).ok_or_else(|| CkksError::CorruptSnapshot {
            reason: "snapshot header geometry overflows".into(),
        })?;
    reader
        .expect_payload_words(components * poly_words)
        .map_err(corrupt)?;
    Ok((limb_count, degree, scale, level, domains))
}

fn domain_bit(poly: &RnsPolynomial) -> u64 {
    match poly.representation() {
        Representation::Coefficient => 0,
        Representation::Evaluation => 1,
    }
}

fn domain_for(bit: u64) -> Representation {
    if bit == 0 {
        Representation::Coefficient
    } else {
        Representation::Evaluation
    }
}

/// An encoded (but not encrypted) CKKS message: a scaled integer polynomial over `Q_level`.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    pub(crate) poly: RnsPolynomial,
    /// The encoding scale `Δ` this plaintext was encoded at.
    pub scale: f64,
    /// The level (index of the last limb of `Q` present).
    pub level: usize,
}

impl Plaintext {
    /// Creates a plaintext from its parts. Intended for scheme-internal use and tests.
    pub fn from_parts(poly: RnsPolynomial, scale: f64, level: usize) -> Self {
        Self { poly, scale, level }
    }

    /// The underlying RNS polynomial.
    pub fn poly(&self) -> &RnsPolynomial {
        &self.poly
    }

    /// The encoding scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The level of the plaintext.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of limbs (`level + 1`).
    pub fn limb_count(&self) -> usize {
        self.poly.limb_count()
    }

    /// Serializes a versioned `FABPTX` snapshot of this plaintext: the shared wire header,
    /// the geometry words (parameter fingerprint, degree, limb count, level, scale bits,
    /// domain tag), then the polynomial's flat limb-major `u64` LE words.
    pub fn to_bytes(&self, ctx: &CkksContext) -> Vec<u8> {
        let mut out = BlobWriter::new(
            PT_SPEC,
            wire::HEADER_BYTES + SNAPSHOT_GEOMETRY_WORDS * 8 + self.poly.data().len() * 8,
        );
        out.push_word(wire::param_fingerprint(ctx.params()));
        out.push_word(self.poly.degree() as u64);
        out.push_word(self.poly.limb_count() as u64);
        out.push_word(self.level as u64);
        out.push_f64(self.scale);
        out.push_word(domain_bit(&self.poly));
        out.push_words(self.poly.data());
        out.finish()
    }

    /// Rebuilds a plaintext serialized by [`Self::to_bytes`] under the same context.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::CorruptSnapshot`] when the blob fails wire validation (magic,
    /// version, checksum, truncation) or its geometry is inconsistent with `ctx` (parameter
    /// fingerprint, degree, level/limb mismatch, non-finite scale, unknown domain tag).
    pub fn from_bytes(bytes: &[u8], ctx: &CkksContext) -> Result<Self> {
        let mut reader = BlobReader::open(PT_SPEC, bytes).map_err(corrupt)?;
        let (limb_count, degree, scale, level, domains) =
            read_snapshot_geometry(&mut reader, ctx, 1)?;
        let data = reader.read_words(degree * limb_count).map_err(corrupt)?;
        reader.finish().map_err(corrupt)?;
        let poly = RnsPolynomial::from_flat(degree, data, domain_for(domains & 1));
        Ok(Self { poly, scale, level })
    }
}

/// A CKKS ciphertext: two ring elements `(c_0, c_1)` over `Q_level` such that
/// `c_0 + c_1·s ≈ Δ·m`.
///
/// Both polynomials are kept in coefficient representation between operations; the evaluator
/// switches to evaluation (NTT) form internally where needed, mirroring the representation
/// switches in the FAB datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    pub(crate) c0: RnsPolynomial,
    pub(crate) c1: RnsPolynomial,
    /// The current scale `Δ` of the encrypted message.
    pub scale: f64,
    /// The current level (index of the last limb of `Q` present).
    pub level: usize,
}

impl Ciphertext {
    /// Creates a ciphertext from its parts. Intended for scheme-internal use and tests.
    pub fn from_parts(c0: RnsPolynomial, c1: RnsPolynomial, scale: f64, level: usize) -> Self {
        Self {
            c0,
            c1,
            scale,
            level,
        }
    }

    /// The `c_0` component.
    pub fn c0(&self) -> &RnsPolynomial {
        &self.c0
    }

    /// The `c_1` component.
    pub fn c1(&self) -> &RnsPolynomial {
        &self.c1
    }

    /// The current scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The current level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of limbs (`level + 1`).
    pub fn limb_count(&self) -> usize {
        self.c0.limb_count()
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.c0.degree()
    }

    /// Size of this ciphertext in bytes when packed at the limb bit-width `log q`.
    pub fn packed_bytes(&self, limb_bits: u32) -> usize {
        2 * self.limb_count() * self.degree() * limb_bits as usize / 8
    }

    /// Serializes a versioned `FABCTX` snapshot of this ciphertext: the shared wire header,
    /// the geometry words (parameter fingerprint, degree, limb count, level, scale bits,
    /// domain tags for `c_0`/`c_1`), then `c_0`'s and `c_1`'s flat limb-major `u64` LE
    /// words. [`ciphertext_snapshot_bytes`] gives the exact output size.
    pub fn to_bytes(&self, ctx: &CkksContext) -> Vec<u8> {
        debug_assert_eq!(self.c0.limb_count(), self.c1.limb_count());
        let mut out = BlobWriter::new(CT_SPEC, ciphertext_snapshot_bytes(ctx.params(), self.level));
        out.push_word(wire::param_fingerprint(ctx.params()));
        out.push_word(self.c0.degree() as u64);
        out.push_word(self.c0.limb_count() as u64);
        out.push_word(self.level as u64);
        out.push_f64(self.scale);
        out.push_word(domain_bit(&self.c0) | (domain_bit(&self.c1) << 1));
        out.push_words(self.c0.data());
        out.push_words(self.c1.data());
        out.finish()
    }

    /// Rebuilds a ciphertext serialized by [`Self::to_bytes`] under the same context.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::CorruptSnapshot`] when the blob fails wire validation (magic,
    /// version, checksum, truncation) or its geometry is inconsistent with `ctx` (parameter
    /// fingerprint, degree, level/limb mismatch, non-finite scale, unknown domain tags).
    pub fn from_bytes(bytes: &[u8], ctx: &CkksContext) -> Result<Self> {
        let mut reader = BlobReader::open(CT_SPEC, bytes).map_err(corrupt)?;
        let (limb_count, degree, scale, level, domains) =
            read_snapshot_geometry(&mut reader, ctx, 2)?;
        let poly_words = degree * limb_count;
        let c0 = reader.read_words(poly_words).map_err(corrupt)?;
        let c1 = reader.read_words(poly_words).map_err(corrupt)?;
        reader.finish().map_err(corrupt)?;
        Ok(Self {
            c0: RnsPolynomial::from_flat(degree, c0, domain_for(domains & 1)),
            c1: RnsPolynomial::from_flat(degree, c1, domain_for((domains >> 1) & 1)),
            scale,
            level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_rns::Representation;

    #[test]
    fn accessors_report_consistent_shape() {
        let poly = RnsPolynomial::zero(64, 3, Representation::Coefficient);
        let pt = Plaintext::from_parts(poly.clone(), 2f64.powi(40), 2);
        assert_eq!(pt.limb_count(), 3);
        assert_eq!(pt.level(), 2);
        assert_eq!(pt.scale(), 2f64.powi(40));

        let ct = Ciphertext::from_parts(poly.clone(), poly, 2f64.powi(40), 2);
        assert_eq!(ct.limb_count(), 3);
        assert_eq!(ct.degree(), 64);
        assert_eq!(ct.level(), 2);
        // 2 ring elements × 3 limbs × 64 coefficients × 40 bits / 8.
        assert_eq!(ct.packed_bytes(40), 2 * 3 * 64 * 5);
    }
}
