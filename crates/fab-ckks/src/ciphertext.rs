//! Plaintext and ciphertext containers.

use fab_rns::RnsPolynomial;

/// An encoded (but not encrypted) CKKS message: a scaled integer polynomial over `Q_level`.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    pub(crate) poly: RnsPolynomial,
    /// The encoding scale `Δ` this plaintext was encoded at.
    pub scale: f64,
    /// The level (index of the last limb of `Q` present).
    pub level: usize,
}

impl Plaintext {
    /// Creates a plaintext from its parts. Intended for scheme-internal use and tests.
    pub fn from_parts(poly: RnsPolynomial, scale: f64, level: usize) -> Self {
        Self { poly, scale, level }
    }

    /// The underlying RNS polynomial.
    pub fn poly(&self) -> &RnsPolynomial {
        &self.poly
    }

    /// The encoding scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The level of the plaintext.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of limbs (`level + 1`).
    pub fn limb_count(&self) -> usize {
        self.poly.limb_count()
    }
}

/// A CKKS ciphertext: two ring elements `(c_0, c_1)` over `Q_level` such that
/// `c_0 + c_1·s ≈ Δ·m`.
///
/// Both polynomials are kept in coefficient representation between operations; the evaluator
/// switches to evaluation (NTT) form internally where needed, mirroring the representation
/// switches in the FAB datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    pub(crate) c0: RnsPolynomial,
    pub(crate) c1: RnsPolynomial,
    /// The current scale `Δ` of the encrypted message.
    pub scale: f64,
    /// The current level (index of the last limb of `Q` present).
    pub level: usize,
}

impl Ciphertext {
    /// Creates a ciphertext from its parts. Intended for scheme-internal use and tests.
    pub fn from_parts(c0: RnsPolynomial, c1: RnsPolynomial, scale: f64, level: usize) -> Self {
        Self {
            c0,
            c1,
            scale,
            level,
        }
    }

    /// The `c_0` component.
    pub fn c0(&self) -> &RnsPolynomial {
        &self.c0
    }

    /// The `c_1` component.
    pub fn c1(&self) -> &RnsPolynomial {
        &self.c1
    }

    /// The current scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The current level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of limbs (`level + 1`).
    pub fn limb_count(&self) -> usize {
        self.c0.limb_count()
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.c0.degree()
    }

    /// Size of this ciphertext in bytes when packed at the limb bit-width `log q`.
    pub fn packed_bytes(&self, limb_bits: u32) -> usize {
        2 * self.limb_count() * self.degree() * limb_bits as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fab_rns::Representation;

    #[test]
    fn accessors_report_consistent_shape() {
        let poly = RnsPolynomial::zero(64, 3, Representation::Coefficient);
        let pt = Plaintext::from_parts(poly.clone(), 2f64.powi(40), 2);
        assert_eq!(pt.limb_count(), 3);
        assert_eq!(pt.level(), 2);
        assert_eq!(pt.scale(), 2f64.powi(40));

        let ct = Ciphertext::from_parts(poly.clone(), poly, 2f64.powi(40), 2);
        assert_eq!(ct.limb_count(), 3);
        assert_eq!(ct.degree(), 64);
        assert_eq!(ct.level(), 2);
        // 2 ring elements × 3 limbs × 64 coefficients × 40 bits / 8.
        assert_eq!(ct.packed_bytes(40), 2 * 3 * 64 * 5);
    }
}
