//! # fab-ckks
//!
//! A from-scratch RNS-CKKS implementation (encoding, encryption, the full evaluator, hybrid
//! key switching, and bootstrapping) serving two roles in the FAB reproduction:
//!
//! 1. the **CPU software baseline** that the paper compares the accelerator against, and
//! 2. the **correctness oracle** for the algorithms whose hardware cost the accelerator model
//!    in `fab-core` estimates.
//!
//! The scheme follows the paper's description (Section 2): RNS limbs of `log q` bits,
//! NTT-based polynomial arithmetic, hybrid (Han–Ki) key switching with `dnum` digits and an
//! extension modulus `P`, and bootstrapping composed of ModRaise, CoeffToSlot, EvalMod
//! (scaled-sine Chebyshev approximation) and SlotToCoeff.
//!
//! The homomorphic linear transforms follow a *plan → execute* flow: a [`BsgsPlan`] regroups
//! a transform's diagonals into baby-step/giant-step rotation sets ([`linear_transform`]),
//! the baby steps execute as one hoisted batch sharing a single key-switch decomposition
//! ([`Evaluator::rotate_hoisted_batch`]), and the identical control flow runs on real
//! ciphertexts or on `(level, scale)` shadows through the [`backend`] seam — so a recorded
//! bootstrap, its planned trace and the `fab-core` accelerator workload carry the same
//! rotation schedule op for op. Sparsely-packed ciphertexts bootstrap through a dedicated
//! entry point ([`bootstrap::BootstrapParams::sparse_for_scheme`]) that projects onto the
//! packing subring with SubSum and factors the tiled sub-FFT over the used slots.
//!
//! The hot key-switch datapath is **transform-minimal** (PR 4): the β digits are raised and
//! forward-transformed as one batched digit-parallel stage, the KSKIP inner product sums the
//! raw 128-bit products of all digits and reduces once per coefficient
//! (`fab_rns::kskip`), hoisted rotation batches permute the once-transformed digits in
//! evaluation domain instead of re-transforming them, and `multiply_rescale` divides by
//! `P·q_ℓ` in one **fused ModDown+rescale** conversion
//! ([`CkksContext::mod_down_rescale_plan`]).
//!
//! On top of that, the evaluation pipeline is **domain-aware** (PR 5): every polynomial
//! carries a `fab_rns::Domain` tag, and the evaluator exploits it end-to-end. `multiply`
//! keeps its tensor products in evaluation form — `d2` enters the key switch through the
//! **dual-form seam** ([`Evaluator::key_switch`] accepts either domain; an evaluation
//! operand's rows are reused verbatim as the digits' own raised rows), and `P·d0`/`P·d1`
//! are absorbed into the KSKIP accumulators before the accumulator inverse, so the PR 4
//! tensor round-trips disappear. Ciphertexts can be kept **eval-resident**
//! ([`Evaluator::to_evaluation_form`]): `multiply_plain`/`add`/`sub` chains are then
//! transform-free per step, and BSGS applies run against the plan's **NTT-cached** diagonal
//! plaintexts with one inverse pair per giant group
//! ([`Evaluator::multiply_plain_ntt`]) — zero plaintext forwards after the one-time
//! per-level warm-up, reused across applies and bootstrap iterations.
//!
//! The [`accounting`] module carries the closed-form expected NTT counts for every hot
//! operation, asserted against the `fab_rns::metering` tallies by regression tests; the
//! PR 3 eager key switch survives as [`Evaluator::key_switch_reference`] and the PR 4
//! coefficient-resident pipelines as [`Evaluator::multiply_reference`] /
//! [`LinearTransform::apply_bsgs_reference`] — the timed and bitwise baselines.
//!
//! ```
//! use fab_ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator,
//!                KeyGenerator, SecretKey};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fab_ckks::CkksError> {
//! let ctx = CkksContext::new_arc(CkksParams::testing())?;
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(7);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
//! let encoder = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone(), keygen.public_key(&mut rng));
//! let decryptor = Decryptor::new(ctx.clone(), sk);
//! let evaluator = Evaluator::new(ctx.clone());
//! let rlk = keygen.relinearization_key(&mut rng);
//!
//! let scale = ctx.params().default_scale();
//! let x = encryptor.encrypt(&encoder.encode_real(&[1.5, 2.0], scale, 3)?, &mut rng)?;
//! let y = encryptor.encrypt(&encoder.encode_real(&[4.0, -1.0], scale, 3)?, &mut rng)?;
//! let product = evaluator.multiply_rescale(&x, &y, &rlk)?;
//! let decoded = encoder.decode_real(&decryptor.decrypt(&product)?);
//! assert!((decoded[0] - 6.0).abs() < 1e-2);
//! assert!((decoded[1] + 2.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod backend;
pub mod bootstrap;
mod chebyshev;
mod ciphertext;
mod context;
mod encoding;
mod encryption;
mod error;
mod evaluator;
mod keys;
pub mod linear_transform;
mod params;
pub mod sampling;
pub mod wire;

pub use backend::{EvalBackend, ExecBackend, PlanBackend, PlanCiphertext};
pub use bootstrap::{BootstrapParams, Bootstrapper};
pub use chebyshev::ChebyshevSeries;
pub use ciphertext::{ciphertext_snapshot_bytes, Ciphertext, Plaintext};
pub use context::CkksContext;
pub use encoding::Encoder;
pub use encryption::{Decryptor, Encryptor};
pub use error::CkksError;
pub use evaluator::Evaluator;
pub use keys::{
    key_set_bytes, switching_key_serialized_bytes, GaloisKeys, KeyGenerator, KeyProvider,
    PublicKey, RelinearizationKey, ResidentKeyProvider, SecretKey, SwitchingKey,
};
pub use linear_transform::{BsgsGroup, BsgsPlan, LinearTransform};
pub use params::{CkksParams, CkksParamsBuilder};

/// Result alias used throughout the CKKS crate.
pub type Result<T> = std::result::Result<T, CkksError>;
