//! The execute/plan seam: one control flow, two interpreters.
//!
//! Higher-level pipelines (linear transforms, Chebyshev evaluation, bootstrapping, encrypted
//! training) are written once against [`EvalBackend`] and run under two interpreters:
//!
//! * [`ExecBackend`] executes on real [`Ciphertext`]s via the (sink-instrumented)
//!   [`Evaluator`], so a `fab_trace::RecordingSink` observes the true operation stream;
//! * [`PlanBackend`] executes on *shadow* ciphertexts carrying only `(level, scale)` and
//!   appends the operations it would have performed to an [`OpTrace`] — producing the
//!   **analytic** trace of the same pipeline without any polynomial arithmetic.
//!
//! Because both interpreters implement the exact level/scale bookkeeping of the evaluator
//! (including the data-independent branches of scale management), a recorded execution and a
//! plan of the same pipeline must agree op-for-op; the equivalence tests in this crate and in
//! the workspace integration suite enforce that, which is what keeps the accelerator model's
//! analytic workloads from drifting away from what the scheme actually executes.

use std::cell::RefCell;
use std::sync::Arc;

use fab_math::Complex64;
use fab_trace::{HeOp, OpTrace};

use crate::evaluator::SCALE_TOLERANCE;
use crate::{
    BsgsPlan, Ciphertext, CkksContext, CkksError, Evaluator, GaloisKeys, LinearTransform,
    RelinearizationKey, Result,
};

/// The operations a backend must interpret; mirrors the semantic surface of [`Evaluator`].
///
/// Implementations must keep the level/scale bookkeeping *identical* to the evaluator's, so
/// that planned and executed traces agree op-for-op.
pub trait EvalBackend {
    /// The ciphertext representation this backend computes on.
    type Ct: Clone;

    /// The scheme context.
    fn ctx(&self) -> &Arc<CkksContext>;

    /// Current level of a ciphertext.
    fn level(&self, ct: &Self::Ct) -> usize;

    /// Current scale of a ciphertext.
    fn scale(&self, ct: &Self::Ct) -> f64;

    /// Marks the start of a named phase in the emitted trace.
    fn begin_phase(&self, label: &str);

    /// Homomorphic addition (operands aligned to the lower level).
    fn add(&self, a: &Self::Ct, b: &Self::Ct) -> Result<Self::Ct>;

    /// Homomorphic subtraction.
    fn sub(&self, a: &Self::Ct, b: &Self::Ct) -> Result<Self::Ct>;

    /// Adds a constant to every slot.
    fn add_scalar(&self, a: &Self::Ct, scalar: Complex64) -> Result<Self::Ct>;

    /// Multiplies every slot by a constant encoded at the current rescaling prime, then
    /// rescales (scale-preserving, one level).
    fn multiply_scalar(&self, a: &Self::Ct, scalar: Complex64) -> Result<Self::Ct>;

    /// Ciphertext–ciphertext multiplication with relinearisation and rescale.
    fn multiply_rescale(&self, a: &Self::Ct, b: &Self::Ct) -> Result<Self::Ct>;

    /// Multiplies by a constant plaintext encoded at `pt_scale` (no rescale).
    fn multiply_const(&self, a: &Self::Ct, value: Complex64, pt_scale: f64) -> Result<Self::Ct>;

    /// Multiplies by a slot-vector plaintext encoded at `pt_scale` (no rescale).
    fn multiply_slots(&self, a: &Self::Ct, values: &[Complex64], pt_scale: f64)
        -> Result<Self::Ct>;

    /// Multiplies by the plaintext `rot_{-shift}(values)` (i.e. `values` pre-rotated right by
    /// `shift` slots) encoded at `pt_scale` — the BSGS giant-step diagonal shape. The default
    /// materialises the shifted vector and defers to [`Self::multiply_slots`]; [`PlanBackend`]
    /// overrides it to skip the O(n) copy, since shadows never read the values.
    ///
    /// # Errors
    ///
    /// Same as [`Self::multiply_slots`].
    fn multiply_shifted_slots(
        &self,
        a: &Self::Ct,
        values: &[Complex64],
        shift: usize,
        pt_scale: f64,
    ) -> Result<Self::Ct> {
        if shift == 0 {
            return self.multiply_slots(a, values, pt_scale);
        }
        let n = values.len();
        let shifted: Vec<Complex64> = (0..n).map(|j| values[(j + n - shift) % n]).collect();
        self.multiply_slots(a, &shifted, pt_scale)
    }

    /// Multiplies by a real slot-vector plaintext encoded at `pt_scale` (no rescale).
    fn multiply_real_slots(&self, a: &Self::Ct, values: &[f64], pt_scale: f64) -> Result<Self::Ct>;

    /// Rescale by the current prime.
    fn rescale(&self, a: &Self::Ct) -> Result<Self::Ct>;

    /// Drops to a lower level without rescaling.
    fn mod_drop_to_level(&self, a: &Self::Ct, level: usize) -> Result<Self::Ct>;

    /// Brings a ciphertext exactly to `target_scale` (possibly spending a level).
    fn match_scale(&self, a: &Self::Ct, target_scale: f64) -> Result<Self::Ct>;

    /// Brings two ciphertexts to a common level and scale.
    fn align_for_addition(&self, a: &Self::Ct, b: &Self::Ct) -> Result<(Self::Ct, Self::Ct)>;

    /// Rotation with its own key-switch decomposition.
    fn rotate(&self, a: &Self::Ct, steps: usize) -> Result<Self::Ct>;

    /// Rotation sharing a decomposition with a previous rotation of the same ciphertext.
    fn rotate_hoisted(&self, a: &Self::Ct, steps: usize) -> Result<Self::Ct>;

    /// Rotates one ciphertext by every step in `steps`, sharing a single key-switch
    /// decomposition across the batch (hoisting, Bossuat et al.): the first nonzero step is a
    /// full rotation, every further nonzero step a hoisted one, and steps that are multiples
    /// of the slot count are free clones. The default implementation defers to
    /// [`Self::rotate`]/[`Self::rotate_hoisted`]; [`ExecBackend`] overrides it with the
    /// evaluator's genuinely-shared Decomp→ModUp, emitting the *identical* op stream — which
    /// is what keeps recorded executions and planned traces in op-for-op agreement.
    ///
    /// # Errors
    ///
    /// Same as [`Self::rotate`].
    fn rotate_batch_hoisted(&self, a: &Self::Ct, steps: &[usize]) -> Result<Vec<Self::Ct>> {
        let slots = self.ctx().slot_count();
        let mut out = Vec::with_capacity(steps.len());
        let mut first = true;
        for &s in steps {
            if s % slots == 0 {
                out.push(a.clone());
            } else if first {
                first = false;
                out.push(self.rotate(a, s)?);
            } else {
                out.push(self.rotate_hoisted(a, s)?);
            }
        }
        Ok(out)
    }

    /// Conjugation.
    fn conjugate(&self, a: &Self::Ct) -> Result<Self::Ct>;

    /// Multiplication by the monomial `X^power` (free on FAB; no trace op).
    fn multiply_by_monomial(&self, a: &Self::Ct, power: usize) -> Result<Self::Ct>;

    /// Promotes a ciphertext to the backend's **evaluation-resident** form, after which
    /// plaintext-multiply/add chains perform no per-step transforms. Emits no trace op —
    /// domain moves are representation bookkeeping, not semantic operations. The default is
    /// the identity (shadows carry no representation); [`ExecBackend`] overrides it with
    /// [`Evaluator::to_evaluation_form`].
    ///
    /// # Errors
    ///
    /// Propagates level errors.
    fn to_eval_resident(&self, a: &Self::Ct) -> Result<Self::Ct> {
        Ok(a.clone())
    }

    /// Applies a planned BSGS linear transform. The default runs the backend-generic
    /// coefficient-resident control flow (one plaintext multiplication round-trip per
    /// diagonal); [`ExecBackend`] overrides it with the eval-resident, NTT-cached execution
    /// — emitting the **identical** semantic op stream, which is what keeps recorded
    /// executions and planned traces in op-for-op agreement.
    ///
    /// # Errors
    ///
    /// Same as [`LinearTransform::apply_with`].
    fn apply_bsgs_planned(
        &self,
        lt: &LinearTransform,
        ct: &Self::Ct,
        plan: &BsgsPlan,
    ) -> Result<Self::Ct>
    where
        Self: Sized,
    {
        crate::linear_transform::apply_planned_generic(lt, self, ct, plan)
    }
}

// --------------------------------------------------------------------------- exec interpreter

/// Executes backend operations on real ciphertexts through an [`Evaluator`] (whose sink then
/// observes the operation stream).
#[derive(Debug, Clone, Copy)]
pub struct ExecBackend<'a> {
    evaluator: &'a Evaluator,
    rlk: Option<&'a RelinearizationKey>,
    keys: Option<&'a GaloisKeys>,
}

impl<'a> ExecBackend<'a> {
    /// A backend with both key kinds available.
    pub fn new(
        evaluator: &'a Evaluator,
        rlk: Option<&'a RelinearizationKey>,
        keys: Option<&'a GaloisKeys>,
    ) -> Self {
        Self {
            evaluator,
            rlk,
            keys,
        }
    }

    fn rlk(&self) -> Result<&'a RelinearizationKey> {
        self.rlk.ok_or_else(|| CkksError::MissingKey {
            description: "relinearization key (not provided to backend)".into(),
        })
    }

    fn keys(&self) -> Result<&'a GaloisKeys> {
        self.keys.ok_or_else(|| CkksError::MissingKey {
            description: "galois keys (not provided to backend)".into(),
        })
    }
}

impl EvalBackend for ExecBackend<'_> {
    type Ct = Ciphertext;

    fn ctx(&self) -> &Arc<CkksContext> {
        self.evaluator.context()
    }

    fn level(&self, ct: &Ciphertext) -> usize {
        ct.level()
    }

    fn scale(&self, ct: &Ciphertext) -> f64 {
        ct.scale()
    }

    fn begin_phase(&self, label: &str) {
        if self.evaluator.sink().is_enabled() {
            self.evaluator.sink().begin_phase(label);
        }
    }

    fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        self.evaluator.add(a, b)
    }

    fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        self.evaluator.sub(a, b)
    }

    fn add_scalar(&self, a: &Ciphertext, scalar: Complex64) -> Result<Ciphertext> {
        self.evaluator.add_scalar(a, scalar)
    }

    fn multiply_scalar(&self, a: &Ciphertext, scalar: Complex64) -> Result<Ciphertext> {
        self.evaluator.multiply_scalar(a, scalar)
    }

    fn multiply_rescale(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        self.evaluator.multiply_rescale(a, b, self.rlk()?)
    }

    fn multiply_const(
        &self,
        a: &Ciphertext,
        value: Complex64,
        pt_scale: f64,
    ) -> Result<Ciphertext> {
        let pt = self
            .evaluator
            .encoder()
            .encode_constant(value, pt_scale, a.level())?;
        self.evaluator.multiply_plain(a, &pt)
    }

    fn multiply_slots(
        &self,
        a: &Ciphertext,
        values: &[Complex64],
        pt_scale: f64,
    ) -> Result<Ciphertext> {
        let pt = self
            .evaluator
            .encoder()
            .encode(values, pt_scale, a.level())?;
        self.evaluator.multiply_plain(a, &pt)
    }

    fn multiply_real_slots(
        &self,
        a: &Ciphertext,
        values: &[f64],
        pt_scale: f64,
    ) -> Result<Ciphertext> {
        let pt = self
            .evaluator
            .encoder()
            .encode_real(values, pt_scale, a.level())?;
        self.evaluator.multiply_plain(a, &pt)
    }

    fn rescale(&self, a: &Ciphertext) -> Result<Ciphertext> {
        self.evaluator.rescale(a)
    }

    fn mod_drop_to_level(&self, a: &Ciphertext, level: usize) -> Result<Ciphertext> {
        self.evaluator.mod_drop_to_level(a, level)
    }

    fn match_scale(&self, a: &Ciphertext, target_scale: f64) -> Result<Ciphertext> {
        self.evaluator.match_scale(a, target_scale)
    }

    fn align_for_addition(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> Result<(Ciphertext, Ciphertext)> {
        self.evaluator.align_for_addition(a, b)
    }

    fn rotate(&self, a: &Ciphertext, steps: usize) -> Result<Ciphertext> {
        self.evaluator.rotate(a, steps, self.keys()?)
    }

    fn rotate_hoisted(&self, a: &Ciphertext, steps: usize) -> Result<Ciphertext> {
        self.evaluator.rotate_hoisted(a, steps, self.keys()?)
    }

    fn rotate_batch_hoisted(&self, a: &Ciphertext, steps: &[usize]) -> Result<Vec<Ciphertext>> {
        self.evaluator.rotate_hoisted_batch(a, steps, self.keys()?)
    }

    fn conjugate(&self, a: &Ciphertext) -> Result<Ciphertext> {
        self.evaluator.conjugate(a, self.keys()?)
    }

    fn multiply_by_monomial(&self, a: &Ciphertext, power: usize) -> Result<Ciphertext> {
        self.evaluator.multiply_by_monomial(a, power)
    }

    fn to_eval_resident(&self, a: &Ciphertext) -> Result<Ciphertext> {
        self.evaluator.to_evaluation_form(a)
    }

    fn apply_bsgs_planned(
        &self,
        lt: &LinearTransform,
        ct: &Ciphertext,
        plan: &BsgsPlan,
    ) -> Result<Ciphertext> {
        lt.apply_planned_exec(self.evaluator, self.keys()?, ct, plan)
    }
}

// --------------------------------------------------------------------------- plan interpreter

/// A shadow ciphertext: just the cost-relevant state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCiphertext {
    /// Current level.
    pub level: usize,
    /// Current scale.
    pub scale: f64,
}

impl PlanCiphertext {
    /// A shadow ciphertext at the given level and scale.
    pub fn new(level: usize, scale: f64) -> Self {
        Self { level, scale }
    }
}

/// Interprets backend operations on shadow ciphertexts, appending the ops that a real
/// execution would perform to an [`OpTrace`].
#[derive(Debug)]
pub struct PlanBackend {
    ctx: Arc<CkksContext>,
    trace: RefCell<OpTrace>,
}

impl PlanBackend {
    /// An empty planner for the given context; `name` becomes the trace name.
    pub fn new(ctx: Arc<CkksContext>, name: impl Into<String>) -> Self {
        Self {
            ctx,
            trace: RefCell::new(OpTrace::new(name)),
        }
    }

    /// Appends a raw op (used for pipeline steps outside the evaluator surface, e.g. the
    /// ModRaise NTT batch).
    pub fn push(&self, op: HeOp) {
        self.trace.borrow_mut().push(op);
    }

    /// Consumes the planner, returning the accumulated analytic trace.
    pub fn into_trace(self) -> OpTrace {
        self.trace.into_inner()
    }

    fn record(&self, op: HeOp) {
        self.trace.borrow_mut().push(op);
    }

    fn rescale_prime(&self, level: usize) -> f64 {
        self.ctx.rescale_prime(level) as f64
    }

    fn check_scales(&self, a: f64, b: f64) -> Result<()> {
        if (a / b - 1.0).abs() >= SCALE_TOLERANCE {
            return Err(CkksError::ScaleMismatch { left: a, right: b });
        }
        Ok(())
    }

    fn align_levels(
        &self,
        a: &PlanCiphertext,
        b: &PlanCiphertext,
    ) -> (PlanCiphertext, PlanCiphertext) {
        let level = a.level.min(b.level);
        (
            PlanCiphertext::new(level, a.scale),
            PlanCiphertext::new(level, b.scale),
        )
    }
}

impl EvalBackend for PlanBackend {
    type Ct = PlanCiphertext;

    fn ctx(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    fn level(&self, ct: &PlanCiphertext) -> usize {
        ct.level
    }

    fn scale(&self, ct: &PlanCiphertext) -> f64 {
        ct.scale
    }

    fn begin_phase(&self, label: &str) {
        self.trace.borrow_mut().mark_phase(label);
    }

    fn add(&self, a: &PlanCiphertext, b: &PlanCiphertext) -> Result<PlanCiphertext> {
        let (a, b) = self.align_levels(a, b);
        self.check_scales(a.scale, b.scale)?;
        self.record(HeOp::Add { level: a.level });
        Ok(a)
    }

    fn sub(&self, a: &PlanCiphertext, b: &PlanCiphertext) -> Result<PlanCiphertext> {
        let (a, b) = self.align_levels(a, b);
        self.check_scales(a.scale, b.scale)?;
        self.record(HeOp::Add { level: a.level });
        Ok(a)
    }

    fn add_scalar(&self, a: &PlanCiphertext, _scalar: Complex64) -> Result<PlanCiphertext> {
        // encode_constant at (a.scale, a.level) then add_plain.
        self.record(HeOp::Add { level: a.level });
        Ok(*a)
    }

    fn multiply_scalar(&self, a: &PlanCiphertext, _scalar: Complex64) -> Result<PlanCiphertext> {
        if a.level == 0 {
            return Err(CkksError::LevelExhausted {
                operation: "multiply_scalar",
            });
        }
        let prime = self.rescale_prime(a.level);
        let product = self.multiply_const(a, Complex64::one(), prime)?;
        self.rescale(&product)
    }

    fn multiply_rescale(&self, a: &PlanCiphertext, b: &PlanCiphertext) -> Result<PlanCiphertext> {
        let (a, b) = self.align_levels(a, b);
        self.record(HeOp::Multiply { level: a.level });
        let product = PlanCiphertext::new(a.level, a.scale * b.scale);
        self.rescale(&product)
    }

    fn multiply_const(
        &self,
        a: &PlanCiphertext,
        _value: Complex64,
        pt_scale: f64,
    ) -> Result<PlanCiphertext> {
        self.record(HeOp::MultiplyPlain { level: a.level });
        Ok(PlanCiphertext::new(a.level, a.scale * pt_scale))
    }

    fn multiply_slots(
        &self,
        a: &PlanCiphertext,
        _values: &[Complex64],
        pt_scale: f64,
    ) -> Result<PlanCiphertext> {
        self.multiply_const(a, Complex64::one(), pt_scale)
    }

    fn multiply_shifted_slots(
        &self,
        a: &PlanCiphertext,
        _values: &[Complex64],
        _shift: usize,
        pt_scale: f64,
    ) -> Result<PlanCiphertext> {
        // Shadows never read the plaintext, so skip materialising the shifted diagonal.
        self.multiply_const(a, Complex64::one(), pt_scale)
    }

    fn multiply_real_slots(
        &self,
        a: &PlanCiphertext,
        _values: &[f64],
        pt_scale: f64,
    ) -> Result<PlanCiphertext> {
        self.multiply_const(a, Complex64::one(), pt_scale)
    }

    fn rescale(&self, a: &PlanCiphertext) -> Result<PlanCiphertext> {
        if a.level == 0 {
            return Err(CkksError::LevelExhausted {
                operation: "rescale",
            });
        }
        self.record(HeOp::Rescale { level: a.level });
        let prime = self.rescale_prime(a.level);
        Ok(PlanCiphertext::new(a.level - 1, a.scale / prime))
    }

    fn mod_drop_to_level(&self, a: &PlanCiphertext, level: usize) -> Result<PlanCiphertext> {
        if level > a.level {
            return Err(CkksError::LevelMismatch {
                left: a.level,
                right: level,
            });
        }
        Ok(PlanCiphertext::new(level, a.scale))
    }

    fn match_scale(&self, a: &PlanCiphertext, target_scale: f64) -> Result<PlanCiphertext> {
        if (a.scale / target_scale - 1.0).abs() < SCALE_TOLERANCE {
            return Ok(PlanCiphertext::new(a.level, target_scale));
        }
        if a.level == 0 {
            return Err(CkksError::LevelExhausted {
                operation: "match_scale",
            });
        }
        let prime = self.rescale_prime(a.level);
        let enc_scale = (target_scale * prime / a.scale).round();
        if enc_scale < 1.0 {
            return Err(CkksError::InvalidInput {
                reason: format!(
                    "cannot match scale {target_scale:e} from {:e} at level {}",
                    a.scale, a.level
                ),
            });
        }
        let product = self.multiply_const(a, Complex64::one(), enc_scale)?;
        let mut rescaled = self.rescale(&product)?;
        rescaled.scale = target_scale;
        Ok(rescaled)
    }

    fn align_for_addition(
        &self,
        a: &PlanCiphertext,
        b: &PlanCiphertext,
    ) -> Result<(PlanCiphertext, PlanCiphertext)> {
        let (mut a, mut b) = self.align_levels(a, b);
        if (a.scale / b.scale - 1.0).abs() >= SCALE_TOLERANCE {
            if a.scale > b.scale {
                a = self.match_scale(&a, b.scale)?;
                let level = a.level.min(b.level);
                a = self.mod_drop_to_level(&a, level)?;
                b = self.mod_drop_to_level(&b, level)?;
            } else {
                b = self.match_scale(&b, a.scale)?;
                let level = a.level.min(b.level);
                a = self.mod_drop_to_level(&a, level)?;
                b = self.mod_drop_to_level(&b, level)?;
            }
        }
        Ok((a, b))
    }

    fn rotate(&self, a: &PlanCiphertext, steps: usize) -> Result<PlanCiphertext> {
        if steps % self.ctx.slot_count() == 0 {
            return Ok(*a);
        }
        self.record(HeOp::Rotate { level: a.level });
        Ok(*a)
    }

    fn rotate_hoisted(&self, a: &PlanCiphertext, steps: usize) -> Result<PlanCiphertext> {
        if steps % self.ctx.slot_count() == 0 {
            return Ok(*a);
        }
        self.record(HeOp::RotateHoisted { level: a.level });
        Ok(*a)
    }

    fn conjugate(&self, a: &PlanCiphertext) -> Result<PlanCiphertext> {
        self.record(HeOp::Conjugate { level: a.level });
        Ok(*a)
    }

    fn multiply_by_monomial(&self, a: &PlanCiphertext, _power: usize) -> Result<PlanCiphertext> {
        Ok(*a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CkksParams;

    #[test]
    fn plan_backend_tracks_levels_and_scales_like_the_scheme() {
        let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
        let plan = PlanBackend::new(ctx.clone(), "plan");
        let scale = ctx.params().default_scale();
        let ct = PlanCiphertext::new(3, scale);
        let sq = plan.multiply_rescale(&ct, &ct).unwrap();
        assert_eq!(sq.level, 2);
        let expected_scale = scale * scale / ctx.rescale_prime(3) as f64;
        assert_eq!(sq.scale, expected_scale);
        let dropped = plan.mod_drop_to_level(&sq, 1).unwrap();
        assert_eq!(dropped.level, 1);
        let trace = plan.into_trace();
        assert_eq!(
            trace.ops,
            vec![HeOp::Multiply { level: 3 }, HeOp::Rescale { level: 3 }]
        );
    }

    #[test]
    fn plan_backend_replicates_error_conditions() {
        let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
        let plan = PlanBackend::new(ctx.clone(), "plan");
        let exhausted = PlanCiphertext::new(0, ctx.params().default_scale());
        assert!(matches!(
            plan.rescale(&exhausted),
            Err(CkksError::LevelExhausted { .. })
        ));
        assert!(matches!(
            plan.mod_drop_to_level(&exhausted, 2),
            Err(CkksError::LevelMismatch { .. })
        ));
        let a = PlanCiphertext::new(2, 1.0e12);
        let b = PlanCiphertext::new(2, 2.0e12);
        assert!(matches!(
            plan.add(&a, &b),
            Err(CkksError::ScaleMismatch { .. })
        ));
    }
}
