//! Closed-form NTT-count accounting for the evaluator's hot operations.
//!
//! Timings drift with machines and schedulers; *operation counts* do not. Following the
//! hardware-performance-monitoring argument (Röhl et al.), every hot path in this crate has a
//! closed-form expected transform count, and regression tests assert that the transforms the
//! substrate actually performed ([`fab_rns::metering`]) equal the formula — so a future
//! change that silently adds transforms fails loudly instead of just getting slower.
//!
//! Notation: a ciphertext at level `ℓ` has `limbs = ℓ + 1` `Q`-limbs, `special = |P| = k`
//! extension limbs, `raised = limbs + special` raised limbs, and the hybrid key switch uses
//! `β = ⌈limbs / α⌉` digits of (up to) `α` limbs.
//!
//! The counts below are the **minimum** the hybrid datapath admits and what the
//! transform-minimal pipeline executes:
//!
//! * key switch (coefficient operand): `β·raised` forward (every digit row exactly once,
//!   batched) + `2·raised` inverse (the two KSKIP accumulators);
//! * key switch (**dual-form**, evaluation operand): `β·raised − limbs` forward — the
//!   operand's rows are reused verbatim as the digits' own raised rows — plus `limbs` extra
//!   inverses feeding the coefficient-domain ModUp conversions;
//! * multiply: the tensor products never round-trip — `d2` enters the key switch dual-form
//!   and `d0`/`d1` are absorbed as `P·d` into the KSKIP accumulators **before** the
//!   accumulator inverse, exactly `limbs` fewer forwards and `2·limbs` fewer inverses than
//!   the PR 4 pipeline ([`multiply_pr4`]);
//! * hoisted rotation batch: the `β·raised` forward sweep is paid **once** for the whole
//!   batch — each rotation permutes the transformed digits in evaluation domain instead of
//!   re-transforming them (the audited-redundant per-rotation forwards the pipeline
//!   eliminated);
//! * eval-resident BSGS stage: plaintext diagonals are NTT-cached in the plan (zero
//!   plaintext forwards after warm-up), babies are promoted to evaluation form once each,
//!   and the partial sums pay one inverse pair per giant **group** instead of per diagonal
//!   ([`bsgs_stage_eval`] vs the PR 4 [`bsgs_stage`]);
//! * fused ModDown+rescale (`multiply_rescale`): identical transform count to `multiply` —
//!   basis conversions are NTT-free, so the fusion saves conversion work, not transforms.
//!
//! Use [`NttMeter`] to measure a region and surface the observed count as a
//! [`fab_trace::HeOp::Ntt`] op in a recorded trace.
//!
//! ## Bytes-moved formulas
//!
//! Beside every transform-count formula sits a `_bytes` twin composing the
//! [`fab_rns::metering::bytes`] kernel costs into the operation's total DRAM-order traffic
//! (row-pass granularity over the flat limb-major layout — see that module's convention).
//! The kernels charge the *same helpers* at their call sites, so `recorded == formula`
//! bytes tests can only fail on a genuine structural change, exactly like the transform
//! counts. One deliberate asymmetry: the formulas assume the fold-free KSKIP schedule
//! (`bytes::fold_count` is 0 at every supported modulus width × digit count), while the
//! charge sites compute the schedule exactly per modulus.

use fab_rns::metering;
use fab_rns::metering::bytes;
pub use fab_rns::metering::{ByteCounts, TransformCounts};
use fab_trace::{HeOp, TraceSink};

use crate::BsgsPlan;

/// Builds a count from forward/inverse totals.
fn counts(forward: u64, inverse: u64) -> TransformCounts {
    TransformCounts { forward, inverse }
}

/// Component-wise sum of transform counts.
#[must_use]
pub fn add(a: TransformCounts, b: TransformCounts) -> TransformCounts {
    counts(a.forward + b.forward, a.inverse + b.inverse)
}

/// Scales a transform count by an operation multiplicity.
#[must_use]
pub fn times(a: TransformCounts, n: u64) -> TransformCounts {
    counts(a.forward * n, a.inverse * n)
}

/// Expected transforms of one hybrid key switch of a **coefficient-form** operand at
/// `limbs = ℓ+1` with `special = |P|` extension limbs and digit size `alpha`:
/// `β·(limbs+special)` forward, `2·(limbs+special)` inverse.
pub fn key_switch(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    let beta = limbs.div_ceil(alpha) as u64;
    let raised = (limbs + special) as u64;
    counts(beta * raised, 2 * raised)
}

/// Expected transforms of one **dual-form** hybrid key switch — the operand arrives in
/// evaluation form (a tensor product `d2`): its rows are reused verbatim as the digits' own
/// raised rows (`limbs` forwards saved against [`key_switch`]) while one batched inverse of
/// the `limbs` rows feeds the coefficient-domain ModUp conversions.
pub fn key_switch_dual(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    let beta = limbs.div_ceil(alpha) as u64;
    let raised = (limbs + special) as u64;
    counts(beta * raised - limbs as u64, 2 * raised + limbs as u64)
}

/// Expected transforms of a ciphertext multiplication (with relinearisation) on
/// **coefficient-form operands** through the dual-form pipeline: four operand forwards, the
/// dual-form key switch of `d2` (its tensor rows never round-trip), and **zero** tensor
/// inverses — `d0`/`d1` stay in evaluation form and are absorbed as `P·d` into the KSKIP
/// accumulators before the accumulator inverse, so ModDown emits `d_i + k_i` directly.
///
/// Against the PR 4 formula ([`multiply_pr4`]) this is exactly `limbs` fewer forwards (the
/// dual-form seam) and `2·limbs` fewer inverses (the evaluation-domain `P·d` absorption) —
/// the ROADMAP "multiply dual-form" lever, overdelivered on the inverse side. A
/// `multiply_rescale` costs exactly the same — the fused ModDown+rescale changes conversion
/// work, not transforms. Evaluation-form operands save a further `2·limbs` forwards each
/// (their `to_evaluation` no-ops).
pub fn multiply(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    add(
        counts(4 * limbs as u64, 0),
        key_switch_dual(limbs, special, alpha),
    )
}

/// The PR 4 coefficient-resident multiplication formula — four operand forwards, three
/// tensor-output inverses, a coefficient-form key switch, coefficient-domain adds — kept as
/// the regression baseline for [`multiply`] (and executed verbatim by
/// `Evaluator::multiply_reference`, the bitwise oracle).
pub fn multiply_pr4(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    add(
        counts(4 * limbs as u64, 3 * limbs as u64),
        key_switch(limbs, special, alpha),
    )
}

/// Expected transforms of a plaintext multiplication on a **coefficient-form** ciphertext:
/// the encoded plaintext and both ciphertext parts go forward, both parts come back.
pub fn multiply_plain(limbs: usize) -> TransformCounts {
    counts(3 * limbs as u64, 2 * limbs as u64)
}

/// Expected transforms of a plaintext multiplication on an **evaluation-form** ciphertext:
/// only the plaintext goes forward — the parts are already there, and the product stays
/// eval-resident (no inverses). With an NTT-cached plaintext
/// (`Evaluator::multiply_plain_ntt`) even that forward disappears: zero transforms.
pub fn multiply_plain_eval(limbs: usize) -> TransformCounts {
    counts(limbs as u64, 0)
}

/// Expected transforms of one key-switched rotation (or conjugation): the coefficient-domain
/// automorphism is transform-free, so this is exactly one key switch.
pub fn rotation(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    key_switch(limbs, special, alpha)
}

/// Expected transforms of a hoisted rotation batch with `rotations` key-switched (nonzero)
/// steps: one shared `β·raised` forward sweep, then `2·raised` inverses per rotation. A batch
/// of only free steps (`rotations == 0`) performs no transforms at all.
pub fn hoisted_rotation_batch(
    limbs: usize,
    special: usize,
    alpha: usize,
    rotations: usize,
) -> TransformCounts {
    if rotations == 0 {
        return TransformCounts::default();
    }
    let beta = limbs.div_ceil(alpha) as u64;
    let raised = (limbs + special) as u64;
    counts(beta * raised, rotations as u64 * 2 * raised)
}

/// Expected transforms of one **coefficient-resident** BSGS linear-transform stage (the PR 4
/// path, still executed by `LinearTransform::apply_bsgs_reference`): the hoisted baby batch,
/// one full plaintext multiplication per diagonal, and one full rotation per nonzero giant
/// step. The trailing rescale is transform-free.
pub fn bsgs_stage(
    limbs: usize,
    special: usize,
    alpha: usize,
    plan: &BsgsPlan,
    diagonals: usize,
) -> TransformCounts {
    let babies = hoisted_rotation_batch(limbs, special, alpha, plan.baby_rotation_count());
    let products = times(multiply_plain(limbs), diagonals as u64);
    let giants = times(
        rotation(limbs, special, alpha),
        plan.giant_rotation_count() as u64,
    );
    add(add(babies, products), giants)
}

/// Expected transforms of one **eval-resident** BSGS stage (the shipped
/// `LinearTransform::apply_with` execution path): the hoisted baby batch, one promotion of
/// each distinct baby ciphertext into evaluation form (`2·limbs` forwards per baby — paid
/// once per baby instead of once per *diagonal*), zero-transform plaintext products against
/// the plan's NTT-cached diagonals, **one** inverse pair per giant group (`2·limbs` per
/// group instead of per diagonal), and one full rotation per nonzero giant step.
///
/// `warm` charges the one-time cache fill: `diagonals·limbs` plaintext forwards on the first
/// application of a transform at a level. Every later application performs **zero plaintext
/// forward transforms** — the cached diagonals are reused across applies and across
/// bootstrap iterations.
pub fn bsgs_stage_eval(
    limbs: usize,
    special: usize,
    alpha: usize,
    plan: &BsgsPlan,
    diagonals: usize,
    warm: bool,
) -> TransformCounts {
    let babies = hoisted_rotation_batch(limbs, special, alpha, plan.baby_rotation_count());
    let baby_count = plan.baby_offsets().len() as u64;
    let group_count = plan.groups().len() as u64;
    let promote = counts(2 * limbs as u64 * baby_count, 0);
    let cache_fill = if warm {
        counts(diagonals as u64 * limbs as u64, 0)
    } else {
        TransformCounts::default()
    };
    let group_inverses = counts(0, 2 * limbs as u64 * group_count);
    let giants = times(
        rotation(limbs, special, alpha),
        plan.giant_rotation_count() as u64,
    );
    add(
        add(add(add(babies, promote), cache_fill), group_inverses),
        giants,
    )
}

/// Traffic of the shared digit raise (`raise_digits`): the hoisted conversion products
/// over the `limbs` source rows, the digit rows' own entry into evaluation form (`limbs`
/// lazy forwards — or, dual-form, `limbs` batched inverses feeding the coefficient-domain
/// conversions), and per digit one lazy conversion + lazy forward for each of its
/// `raised - len_j` extension rows.
fn raise_bytes(
    degree: usize,
    limbs: usize,
    special: usize,
    alpha: usize,
    dual: bool,
) -> ByteCounts {
    let beta = limbs.div_ceil(alpha);
    let raised = limbs + special;
    let mut cost = bytes::hoisted_products(degree, limbs);
    cost += if dual {
        bytes::ntt_inverse(degree).times(limbs as u64)
    } else {
        bytes::ntt_forward_lazy(degree).times(limbs as u64)
    };
    for j in 0..beta {
        let len = ((j + 1) * alpha).min(limbs) - j * alpha;
        cost += (bytes::convert_row_lazy(degree, len) + bytes::ntt_forward_lazy(degree))
            .times((raised - len) as u64);
    }
    cost
}

/// Traffic of the u128 KSKIP accumulation: one [`bytes::kskip_row`] per raised limb over
/// the `β` digits (fold-free — see the module docs).
fn kskip_bytes(
    degree: usize,
    limbs: usize,
    special: usize,
    alpha: usize,
    permuted: bool,
) -> ByteCounts {
    let beta = limbs.div_ceil(alpha);
    let raised = (limbs + special) as u64;
    bytes::kskip_row(degree, beta, 0, permuted).times(raised)
}

/// Bytes moved by one hybrid key switch of a **coefficient-form** operand: the digit
/// raise, the KSKIP inner product, both accumulator inverse batches, and both ModDowns.
pub fn key_switch_bytes(degree: usize, limbs: usize, special: usize, alpha: usize) -> ByteCounts {
    let raised = (limbs + special) as u64;
    raise_bytes(degree, limbs, special, alpha, false)
        + kskip_bytes(degree, limbs, special, alpha, false)
        + bytes::ntt_inverse(degree).times(2 * raised)
        + bytes::mod_down(degree, limbs, special).times(2)
}

/// Bytes moved by one **dual-form** hybrid key switch (evaluation-form operand): the
/// digits' own rows are reused verbatim (their lazy forwards disappear) and one batched
/// inverse of the `limbs` rows feeds the conversions instead.
pub fn key_switch_dual_bytes(
    degree: usize,
    limbs: usize,
    special: usize,
    alpha: usize,
) -> ByteCounts {
    let raised = (limbs + special) as u64;
    raise_bytes(degree, limbs, special, alpha, true)
        + kskip_bytes(degree, limbs, special, alpha, false)
        + bytes::ntt_inverse(degree).times(2 * raised)
        + bytes::mod_down(degree, limbs, special).times(2)
}

/// Bytes moved by a ciphertext multiplication (with relinearisation) on coefficient-form
/// operands through the dual-form pipeline: four operand forwards, the three pointwise
/// tensor products plus one fused multiply-add, the dual-form key switch of `d2`, and the
/// evaluation-domain `P·d` absorption of `d0`/`d1` into the accumulators.
pub fn multiply_bytes(degree: usize, limbs: usize, special: usize, alpha: usize) -> ByteCounts {
    bytes::ntt_forward(degree).times(4 * limbs as u64)
        + bytes::pointwise_binary(degree, limbs).times(3)
        + bytes::fused_multiply_add(degree, limbs)
        + bytes::absorb(degree, limbs).times(2)
        + key_switch_dual_bytes(degree, limbs, special, alpha)
}

/// Bytes moved by a fused multiply+rescale: identical to [`multiply_bytes`] except the
/// fused ModDown+rescale plan treats the level's top prime as a special limb
/// (`q_len = limbs-1`, `p_len = special+1`), so the conversion traffic differs while the
/// transform count does not.
pub fn multiply_rescale_bytes(
    degree: usize,
    limbs: usize,
    special: usize,
    alpha: usize,
) -> ByteCounts {
    let raised = (limbs + special) as u64;
    bytes::ntt_forward(degree).times(4 * limbs as u64)
        + bytes::pointwise_binary(degree, limbs).times(3)
        + bytes::fused_multiply_add(degree, limbs)
        + bytes::absorb(degree, limbs).times(2)
        + raise_bytes(degree, limbs, special, alpha, true)
        + kskip_bytes(degree, limbs, special, alpha, false)
        + bytes::ntt_inverse(degree).times(2 * raised)
        + bytes::mod_down(degree, limbs - 1, special + 1).times(2)
}

/// Bytes moved by one key-switched rotation (or conjugation): both parts' automorphism
/// gathers, the key switch of the rotated `c1`, and the `c0 += k0` combine. (The
/// automorphisms and the add are transform-free but not traffic-free.)
pub fn rotation_bytes(degree: usize, limbs: usize, special: usize, alpha: usize) -> ByteCounts {
    bytes::automorphism(degree, limbs).times(2)
        + key_switch_bytes(degree, limbs, special, alpha)
        + bytes::pointwise_binary(degree, limbs)
}

/// Bytes moved by a hoisted rotation batch with `rotations` key-switched steps: the digit
/// raise paid **once**, then per rotation a permuted KSKIP sweep (the evaluation-domain
/// gather rides the inner product), both accumulator inverse batches, both ModDowns, the
/// `c0` automorphism and the `c0 += k0` combine. Free-step-only batches move nothing.
pub fn hoisted_rotation_batch_bytes(
    degree: usize,
    limbs: usize,
    special: usize,
    alpha: usize,
    rotations: usize,
) -> ByteCounts {
    if rotations == 0 {
        return ByteCounts::default();
    }
    let raised = (limbs + special) as u64;
    let per_rotation = kskip_bytes(degree, limbs, special, alpha, true)
        + bytes::ntt_inverse(degree).times(2 * raised)
        + bytes::mod_down(degree, limbs, special).times(2)
        + bytes::automorphism(degree, limbs)
        + bytes::pointwise_binary(degree, limbs);
    raise_bytes(degree, limbs, special, alpha, false) + per_rotation.times(rotations as u64)
}

/// Bytes moved by one **eval-resident** BSGS stage (the shipped `apply_with` path): the
/// hoisted baby batch, each distinct baby promoted to evaluation form once, the one-time
/// diagonal cache fill when `warm`, two pointwise products per diagonal against the cached
/// plaintext rows, the eval-resident partial-sum adds (`diagonals - 1` ciphertext adds),
/// one inverse pair per giant group, one full rotation per nonzero giant step, and the
/// trailing rescale of both parts.
pub fn bsgs_stage_eval_bytes(
    degree: usize,
    limbs: usize,
    special: usize,
    alpha: usize,
    plan: &BsgsPlan,
    diagonals: usize,
    warm: bool,
) -> ByteCounts {
    let baby_count = plan.baby_offsets().len() as u64;
    let group_count = plan.groups().len() as u64;
    let babies =
        hoisted_rotation_batch_bytes(degree, limbs, special, alpha, plan.baby_rotation_count());
    let promote = bytes::ntt_forward(degree).times(2 * limbs as u64 * baby_count);
    let cache_fill = if warm {
        bytes::ntt_forward(degree).times((diagonals * limbs) as u64)
    } else {
        ByteCounts::default()
    };
    let products = bytes::pointwise_binary(degree, limbs).times(2 * diagonals as u64);
    let sums = bytes::pointwise_binary(degree, limbs).times(2 * diagonals.saturating_sub(1) as u64);
    let group_inverses = bytes::ntt_inverse(degree).times(2 * limbs as u64 * group_count);
    let giants =
        rotation_bytes(degree, limbs, special, alpha).times(plan.giant_rotation_count() as u64);
    let rescales = bytes::rescale(degree, limbs).times(2);
    babies + promote + cache_fill + products + sums + group_inverses + giants + rescales
}

/// Measures the transforms performed between construction and [`NttMeter::elapsed`] /
/// [`NttMeter::finish_into`], using the thread-local [`fab_rns::metering`] counters.
///
/// `finish_into` surfaces the observed count as a [`HeOp::Ntt`] op on a trace sink, so
/// recorded traces (and their [`fab_trace::OpCounts::ntt`] tallies) carry verified transform
/// counts alongside the semantic operation stream.
#[derive(Debug)]
pub struct NttMeter {
    start: TransformCounts,
}

impl NttMeter {
    /// Starts measuring from the current thread's counters.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: metering::counts(),
        }
    }

    /// Transforms performed since [`NttMeter::start`].
    pub fn elapsed(&self) -> TransformCounts {
        metering::counts().since(&self.start)
    }

    /// Records the elapsed transform count as one [`HeOp::Ntt`] op on `sink` and returns it.
    pub fn finish_into(self, sink: &dyn TraceSink) -> TransformCounts {
        let elapsed = self.elapsed();
        sink.record(HeOp::Ntt {
            count: elapsed.total() as usize,
        });
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_compose() {
        // testing()-shaped: limbs 7, special 3, alpha 3 → beta 3, raised 10.
        let ks = key_switch(7, 3, 3);
        assert_eq!(
            ks,
            TransformCounts {
                forward: 30,
                inverse: 20
            }
        );
        // Dual-form: the 7 operand rows skip their forwards and pay conversion inverses.
        assert_eq!(
            key_switch_dual(7, 3, 3),
            TransformCounts {
                forward: 23,
                inverse: 27
            }
        );
        let mul = multiply(7, 3, 3);
        assert_eq!(
            mul,
            TransformCounts {
                forward: 51,
                inverse: 27
            }
        );
        // Exactly `limbs` fewer forwards and `2·limbs` fewer inverses than the PR 4 formula.
        let pr4 = multiply_pr4(7, 3, 3);
        assert_eq!(
            pr4,
            TransformCounts {
                forward: 58,
                inverse: 41
            }
        );
        assert_eq!(pr4.forward - mul.forward, 7);
        assert_eq!(pr4.inverse - mul.inverse, 14);
        assert_eq!(
            multiply_plain(7),
            TransformCounts {
                forward: 21,
                inverse: 14
            }
        );
        assert_eq!(
            multiply_plain_eval(7),
            TransformCounts {
                forward: 7,
                inverse: 0
            }
        );
        assert_eq!(rotation(7, 3, 3), ks);
        // A 4-rotation hoisted batch pays the forward sweep once.
        let batch = hoisted_rotation_batch(7, 3, 3, 4);
        assert_eq!(
            batch,
            TransformCounts {
                forward: 30,
                inverse: 80
            }
        );
        assert_eq!(
            hoisted_rotation_batch(7, 3, 3, 0),
            TransformCounts::default()
        );
        // Helpers.
        assert_eq!(add(ks, ks), times(ks, 2));
    }

    #[test]
    fn eval_resident_bsgs_formula_beats_the_pr4_formula() {
        // 12 diagonals, baby step 4 → babies {0,1,2,3}, groups {0,4,8}.
        let offsets: Vec<usize> = (0..12).collect();
        let plan = BsgsPlan::with_baby_step(64, &offsets, 4);
        let coeff = bsgs_stage(4, 2, 2, &plan, 12);
        let warm = bsgs_stage_eval(4, 2, 2, &plan, 12, true);
        let steady = bsgs_stage_eval(4, 2, 2, &plan, 12, false);
        // Warm-up charges exactly the one-time diagonal cache fill; nothing else differs.
        assert_eq!(warm.forward - steady.forward, 12 * 4);
        assert_eq!(warm.inverse, steady.inverse);
        // After warm-up the eval-resident stage strictly beats the PR 4 coefficient path:
        // babies promoted once each vs one round-trip per diagonal, one inverse pair per
        // giant group vs per diagonal.
        assert!(steady.forward < coeff.forward, "{steady:?} vs {coeff:?}");
        assert!(steady.inverse < coeff.inverse, "{steady:?} vs {coeff:?}");
        assert_eq!(
            steady,
            TransformCounts {
                forward: 68,
                inverse: 84
            }
        );
        assert_eq!(
            coeff,
            TransformCounts {
                forward: 180,
                inverse: 156
            }
        );
    }

    #[test]
    fn meter_reports_into_a_sink() {
        let sink = fab_trace::RecordingSink::new("meter");
        let meter = NttMeter::start();
        fab_rns::metering::add_forward(5);
        fab_rns::metering::add_inverse(2);
        let elapsed = meter.finish_into(&sink);
        assert_eq!(elapsed.total(), 7);
        assert_eq!(sink.snapshot().counts().ntt, 7);
    }
}
