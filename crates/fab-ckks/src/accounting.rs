//! Closed-form NTT-count accounting for the evaluator's hot operations.
//!
//! Timings drift with machines and schedulers; *operation counts* do not. Following the
//! hardware-performance-monitoring argument (Röhl et al.), every hot path in this crate has a
//! closed-form expected transform count, and regression tests assert that the transforms the
//! substrate actually performed ([`fab_rns::metering`]) equal the formula — so a future
//! change that silently adds transforms fails loudly instead of just getting slower.
//!
//! Notation: a ciphertext at level `ℓ` has `limbs = ℓ + 1` `Q`-limbs, `special = |P| = k`
//! extension limbs, `raised = limbs + special` raised limbs, and the hybrid key switch uses
//! `β = ⌈limbs / α⌉` digits of (up to) `α` limbs.
//!
//! The counts below are the **minimum** the hybrid datapath admits and what the
//! transform-minimal pipeline executes:
//!
//! * key switch: `β·raised` forward (every digit row exactly once, batched) + `2·raised`
//!   inverse (the two KSKIP accumulators);
//! * hoisted rotation batch: the `β·raised` forward sweep is paid **once** for the whole
//!   batch — each rotation permutes the transformed digits in evaluation domain instead of
//!   re-transforming them (the audited-redundant per-rotation forwards the pipeline
//!   eliminated);
//! * fused ModDown+rescale (`multiply_rescale`): identical transform count to `multiply` —
//!   basis conversions are NTT-free, so the fusion saves conversion work, not transforms.
//!
//! Use [`NttMeter`] to measure a region and surface the observed count as a
//! [`fab_trace::HeOp::Ntt`] op in a recorded trace.

use fab_rns::metering;
pub use fab_rns::metering::TransformCounts;
use fab_trace::{HeOp, TraceSink};

use crate::BsgsPlan;

/// Builds a count from forward/inverse totals.
fn counts(forward: u64, inverse: u64) -> TransformCounts {
    TransformCounts { forward, inverse }
}

/// Component-wise sum of transform counts.
#[must_use]
pub fn add(a: TransformCounts, b: TransformCounts) -> TransformCounts {
    counts(a.forward + b.forward, a.inverse + b.inverse)
}

/// Scales a transform count by an operation multiplicity.
#[must_use]
pub fn times(a: TransformCounts, n: u64) -> TransformCounts {
    counts(a.forward * n, a.inverse * n)
}

/// Expected transforms of one hybrid key switch at `limbs = ℓ+1` with `special = |P|`
/// extension limbs and digit size `alpha`: `β·(limbs+special)` forward, `2·(limbs+special)`
/// inverse.
pub fn key_switch(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    let beta = limbs.div_ceil(alpha) as u64;
    let raised = (limbs + special) as u64;
    counts(beta * raised, 2 * raised)
}

/// Expected transforms of a ciphertext multiplication (with relinearisation): four operand
/// forwards, three tensor-output inverses, plus the key switch. A `multiply_rescale` costs
/// exactly the same — the fused ModDown+rescale changes conversion work, not transforms.
pub fn multiply(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    add(
        counts(4 * limbs as u64, 3 * limbs as u64),
        key_switch(limbs, special, alpha),
    )
}

/// Expected transforms of a plaintext multiplication: the encoded plaintext and both
/// ciphertext parts go forward, both parts come back.
pub fn multiply_plain(limbs: usize) -> TransformCounts {
    counts(3 * limbs as u64, 2 * limbs as u64)
}

/// Expected transforms of one key-switched rotation (or conjugation): the coefficient-domain
/// automorphism is transform-free, so this is exactly one key switch.
pub fn rotation(limbs: usize, special: usize, alpha: usize) -> TransformCounts {
    key_switch(limbs, special, alpha)
}

/// Expected transforms of a hoisted rotation batch with `rotations` key-switched (nonzero)
/// steps: one shared `β·raised` forward sweep, then `2·raised` inverses per rotation. A batch
/// of only free steps (`rotations == 0`) performs no transforms at all.
pub fn hoisted_rotation_batch(
    limbs: usize,
    special: usize,
    alpha: usize,
    rotations: usize,
) -> TransformCounts {
    if rotations == 0 {
        return TransformCounts::default();
    }
    let beta = limbs.div_ceil(alpha) as u64;
    let raised = (limbs + special) as u64;
    counts(beta * raised, rotations as u64 * 2 * raised)
}

/// Expected transforms of one BSGS linear-transform stage (a bootstrap CoeffToSlot /
/// SlotToCoeff stage) applied at `limbs = ℓ+1`: the hoisted baby batch, one plaintext
/// multiplication per diagonal, and one full rotation per nonzero giant step. The trailing
/// rescale is transform-free.
pub fn bsgs_stage(
    limbs: usize,
    special: usize,
    alpha: usize,
    plan: &BsgsPlan,
    diagonals: usize,
) -> TransformCounts {
    let babies = hoisted_rotation_batch(limbs, special, alpha, plan.baby_rotation_count());
    let products = times(multiply_plain(limbs), diagonals as u64);
    let giants = times(
        rotation(limbs, special, alpha),
        plan.giant_rotation_count() as u64,
    );
    add(add(babies, products), giants)
}

/// Measures the transforms performed between construction and [`NttMeter::elapsed`] /
/// [`NttMeter::finish_into`], using the thread-local [`fab_rns::metering`] counters.
///
/// `finish_into` surfaces the observed count as a [`HeOp::Ntt`] op on a trace sink, so
/// recorded traces (and their [`fab_trace::OpCounts::ntt`] tallies) carry verified transform
/// counts alongside the semantic operation stream.
#[derive(Debug)]
pub struct NttMeter {
    start: TransformCounts,
}

impl NttMeter {
    /// Starts measuring from the current thread's counters.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: metering::counts(),
        }
    }

    /// Transforms performed since [`NttMeter::start`].
    pub fn elapsed(&self) -> TransformCounts {
        metering::counts().since(&self.start)
    }

    /// Records the elapsed transform count as one [`HeOp::Ntt`] op on `sink` and returns it.
    pub fn finish_into(self, sink: &dyn TraceSink) -> TransformCounts {
        let elapsed = self.elapsed();
        sink.record(HeOp::Ntt {
            count: elapsed.total() as usize,
        });
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_compose() {
        // testing()-shaped: limbs 7, special 3, alpha 3 → beta 3, raised 10.
        let ks = key_switch(7, 3, 3);
        assert_eq!(
            ks,
            TransformCounts {
                forward: 30,
                inverse: 20
            }
        );
        let mul = multiply(7, 3, 3);
        assert_eq!(
            mul,
            TransformCounts {
                forward: 58,
                inverse: 41
            }
        );
        assert_eq!(
            multiply_plain(7),
            TransformCounts {
                forward: 21,
                inverse: 14
            }
        );
        assert_eq!(rotation(7, 3, 3), ks);
        // A 4-rotation hoisted batch pays the forward sweep once.
        let batch = hoisted_rotation_batch(7, 3, 3, 4);
        assert_eq!(
            batch,
            TransformCounts {
                forward: 30,
                inverse: 80
            }
        );
        assert_eq!(
            hoisted_rotation_batch(7, 3, 3, 0),
            TransformCounts::default()
        );
        // Helpers.
        assert_eq!(add(ks, ks), times(ks, 2));
    }

    #[test]
    fn meter_reports_into_a_sink() {
        let sink = fab_trace::RecordingSink::new("meter");
        let meter = NttMeter::start();
        fab_rns::metering::add_forward(5);
        fab_rns::metering::add_inverse(2);
        let elapsed = meter.finish_into(&sink);
        assert_eq!(elapsed.total(), 7);
        assert_eq!(sink.snapshot().counts().ntt, 7);
    }
}
