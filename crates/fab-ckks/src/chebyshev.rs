//! Chebyshev polynomial approximation and its homomorphic evaluation (baby-step/giant-step).
//!
//! Bootstrapping approximates the modular-reduction step by a scaled sine, evaluated as a
//! Chebyshev series (Section 2.1.3 of the paper, following Bossuat et al. for non-sparse
//! keys). The same machinery evaluates the sigmoid used by encrypted logistic regression.

use fab_math::Complex64;

use crate::backend::{EvalBackend, ExecBackend};
use crate::{Ciphertext, CkksError, Evaluator, RelinearizationKey, Result};

/// A Chebyshev series `Σ c_k T_k(t)` on a domain `[a, b]` (mapped affinely onto `[-1, 1]`).
///
/// ```
/// use fab_ckks::ChebyshevSeries;
///
/// let series = ChebyshevSeries::fit(|x| x * x, 8, -1.0, 1.0);
/// assert!((series.evaluate(0.5) - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ChebyshevSeries {
    coeffs: Vec<f64>,
    domain: (f64, f64),
}

impl ChebyshevSeries {
    /// Fits a degree-`degree` Chebyshev interpolant of `f` on `[a, b]` using Chebyshev nodes.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b`.
    pub fn fit(f: impl Fn(f64) -> f64, degree: usize, a: f64, b: f64) -> Self {
        assert!(a < b, "domain must be non-degenerate");
        let n = degree + 1;
        // Sample f at the Chebyshev nodes of the domain.
        let samples: Vec<f64> = (0..n)
            .map(|j| {
                let theta = std::f64::consts::PI * (j as f64 + 0.5) / n as f64;
                let t = theta.cos();
                let x = 0.5 * (b - a) * t + 0.5 * (a + b);
                f(x)
            })
            .collect();
        // Discrete cosine transform to obtain the interpolation coefficients.
        let mut coeffs = Vec::with_capacity(n);
        for k in 0..n {
            let mut acc = 0.0;
            for (j, &s) in samples.iter().enumerate() {
                let theta = std::f64::consts::PI * (j as f64 + 0.5) / n as f64;
                acc += s * (k as f64 * theta).cos();
            }
            let factor = if k == 0 { 1.0 } else { 2.0 };
            coeffs.push(factor * acc / n as f64);
        }
        Self {
            coeffs,
            domain: (a, b),
        }
    }

    /// Builds a series from explicit coefficients on the given domain.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b` or the coefficient list is empty.
    pub fn from_coefficients(coeffs: Vec<f64>, a: f64, b: f64) -> Self {
        assert!(a < b, "domain must be non-degenerate");
        assert!(!coeffs.is_empty(), "at least one coefficient is required");
        Self {
            coeffs,
            domain: (a, b),
        }
    }

    /// The Chebyshev coefficients `c_0 … c_d`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The approximation domain `[a, b]`.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Degree of the series.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the series at a point (Clenshaw recurrence). Points outside the domain are
    /// evaluated by extrapolation.
    pub fn evaluate(&self, x: f64) -> f64 {
        let (a, b) = self.domain;
        let t = (2.0 * x - a - b) / (b - a);
        let mut b1 = 0.0f64;
        let mut b2 = 0.0f64;
        for &c in self.coeffs.iter().skip(1).rev() {
            let tmp = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = tmp;
        }
        self.coeffs[0] + t * b1 - b2
    }

    /// Maximum absolute error of the approximation against `f` on a uniform grid of the domain.
    pub fn max_error(&self, f: impl Fn(f64) -> f64, grid: usize) -> f64 {
        let (a, b) = self.domain;
        (0..=grid)
            .map(|i| {
                let x = a + (b - a) * i as f64 / grid as f64;
                (self.evaluate(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Homomorphically evaluates the series on a ciphertext whose *logical slot values* lie in
    /// the series' domain, using the baby-step/giant-step algorithm over the Chebyshev basis.
    ///
    /// The multiplicative depth is `O(log degree)` plus a few levels of scale management.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::LevelExhausted`] if the ciphertext does not carry enough levels.
    pub fn evaluate_homomorphic(
        &self,
        evaluator: &Evaluator,
        ct: &Ciphertext,
        rlk: &RelinearizationKey,
    ) -> Result<Ciphertext> {
        let backend = ExecBackend::new(evaluator, Some(rlk), None);
        self.evaluate_with(&backend, ct)
    }

    /// Backend-generic BSGS evaluation: the single control flow behind both the real
    /// execution ([`ExecBackend`]) and the analytic plan ([`crate::backend::PlanBackend`]).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::LevelExhausted`] if the ciphertext does not carry enough levels.
    pub fn evaluate_with<B: EvalBackend>(&self, backend: &B, ct: &B::Ct) -> Result<B::Ct> {
        let (a, b) = self.domain;
        // Map the input onto [-1, 1] if the domain is not already the canonical interval.
        let ct_t = if (a + 1.0).abs() < 1e-12 && (b - 1.0).abs() < 1e-12 {
            ct.clone()
        } else {
            // t = (2x - (a+b)) / (b - a): one scalar multiplication + one scalar addition.
            let scaled = backend.multiply_scalar(ct, Complex64::new(2.0 / (b - a), 0.0))?;
            backend.add_scalar(&scaled, Complex64::new(-(a + b) / (b - a), 0.0))?
        };

        let degree = self.degree();
        if degree == 0 {
            // Constant series: multiply by zero and add the constant.
            let zeroed = backend.multiply_scalar(&ct_t, Complex64::zero())?;
            return backend.add_scalar(&zeroed, Complex64::new(self.coeffs[0], 0.0));
        }

        // Baby-step count m: smallest power of two with m^2 >= degree + 1 (classic BSGS split).
        let mut m = 1usize;
        while m * m < degree + 1 {
            m *= 2;
        }
        // Giant steps: T_m, T_{2m}, ... up to the largest index <= degree.
        let mut giant_indices = Vec::new();
        let mut g = m;
        while g <= degree {
            giant_indices.push(g);
            g *= 2;
        }

        // Compute the Chebyshev basis ciphertexts.
        let mut basis: Vec<Option<B::Ct>> = vec![None; degree + 1];
        basis[1] = Some(ct_t.clone());
        // Baby steps T_2 .. T_m (T_m doubles as the first giant step when it exists).
        for j in 2..=m.min(degree) {
            let half = j / 2;
            let other = j - half;
            let t = self.chebyshev_product(backend, &basis, half, other)?;
            basis[j] = Some(t);
        }
        for (gi, &idx) in giant_indices.iter().enumerate() {
            if gi == 0 {
                continue; // T_m already computed above (if degree >= m).
            }
            let prev = giant_indices[gi - 1];
            let t = self.chebyshev_product(backend, &basis, prev, prev)?;
            basis[idx] = Some(t);
        }

        self.evaluate_recursive(backend, &self.coeffs, &basis, m)
    }

    /// `T_{i+j} = 2·T_i·T_j − T_{|i−j|}` on ciphertexts (with `T_0 = 1`).
    fn chebyshev_product<B: EvalBackend>(
        &self,
        backend: &B,
        basis: &[Option<B::Ct>],
        i: usize,
        j: usize,
    ) -> Result<B::Ct> {
        let ti = basis[i].as_ref().ok_or(CkksError::InvalidInput {
            reason: format!("chebyshev basis T_{i} missing"),
        })?;
        let tj = basis[j].as_ref().ok_or(CkksError::InvalidInput {
            reason: format!("chebyshev basis T_{j} missing"),
        })?;
        let level = backend.level(ti).min(backend.level(tj));
        let ti = backend.mod_drop_to_level(ti, level)?;
        let tj = backend.mod_drop_to_level(tj, level)?;
        let product = backend.multiply_rescale(&ti, &tj)?;
        let doubled = backend.add(&product, &product)?;
        let diff = i.abs_diff(j);
        if diff == 0 {
            // 2 T_i T_i - T_0 = 2 T_i^2 - 1.
            backend.add_scalar(&doubled, Complex64::new(-1.0, 0.0))
        } else {
            let t_diff = basis[diff].as_ref().ok_or(CkksError::InvalidInput {
                reason: format!("chebyshev basis T_{diff} missing"),
            })?;
            let (x, y) = backend.align_for_addition(&doubled, t_diff)?;
            backend.sub(&x, &y)
        }
    }

    /// Recursive BSGS evaluation: split `p = q·T_g + r` at the largest giant step `g`.
    fn evaluate_recursive<B: EvalBackend>(
        &self,
        backend: &B,
        coeffs: &[f64],
        basis: &[Option<B::Ct>],
        m: usize,
    ) -> Result<B::Ct> {
        let degree = coeffs.len() - 1;
        if degree < m {
            return self.evaluate_leaf(backend, coeffs, basis);
        }
        // Largest power-of-two multiple of m that is <= degree.
        let mut g = m;
        while g * 2 <= degree {
            g *= 2;
        }
        // Split the Chebyshev coefficients: p = q·T_g + r with
        //   q[0] = c[g], q[j] = 2·c[g+j]  (j >= 1)
        //   r[i] = c[i] (i < g), then r[g - j] -= c[g+j] for j >= 1.
        let mut q = vec![0.0f64; degree - g + 1];
        q[0] = coeffs[g];
        for j in 1..=degree - g {
            q[j] = 2.0 * coeffs[g + j];
        }
        let mut r = coeffs[..g].to_vec();
        for j in 1..=degree - g {
            if g >= j {
                r[g - j] -= coeffs[g + j];
            }
        }
        let q_eval = self.evaluate_recursive(backend, &q, basis, m)?;
        let r_eval = self.evaluate_recursive(backend, &r, basis, m)?;
        let t_g = basis[g].as_ref().ok_or(CkksError::InvalidInput {
            reason: format!("chebyshev basis T_{g} missing"),
        })?;
        let level = backend.level(&q_eval).min(backend.level(t_g));
        let q_dropped = backend.mod_drop_to_level(&q_eval, level)?;
        let t_dropped = backend.mod_drop_to_level(t_g, level)?;
        let product = backend.multiply_rescale(&q_dropped, &t_dropped)?;
        let (x, y) = backend.align_for_addition(&product, &r_eval)?;
        backend.add(&x, &y)
    }

    /// Leaf evaluation `Σ_{j<m} c_j·T_j` using plaintext multiplications only.
    ///
    /// The accumulation runs **eval-resident**: every basis term is promoted to the
    /// backend's evaluation form once, so each constant product and each add is
    /// transform-free on real ciphertexts (the constant plaintext pays its own forwards;
    /// the terms never round-trip). The single crossing back to coefficient form happens
    /// inside the trailing rescale. Bitwise identical to the coefficient-resident order —
    /// the inverse NTT canonicalises — and the emitted op stream is unchanged.
    fn evaluate_leaf<B: EvalBackend>(
        &self,
        backend: &B,
        coeffs: &[f64],
        basis: &[Option<B::Ct>],
    ) -> Result<B::Ct> {
        // Find the working level: the minimum level among the basis terms we need.
        let mut level = usize::MAX;
        for (j, c) in coeffs.iter().enumerate().skip(1) {
            if c.abs() > 0.0 {
                if let Some(t) = basis[j].as_ref() {
                    level = level.min(backend.level(t));
                }
            }
        }
        if level == usize::MAX {
            // No ciphertext term: encode the constant on top of T_1 scaled by zero.
            let t1 = basis[1].as_ref().expect("T_1 always present");
            let zeroed = backend.multiply_scalar(t1, Complex64::zero())?;
            return backend.add_scalar(&zeroed, Complex64::new(coeffs[0], 0.0));
        }
        if level == 0 {
            return Err(CkksError::LevelExhausted {
                operation: "chebyshev leaf evaluation",
            });
        }
        let prime = backend.ctx().rescale_prime(level) as f64;
        let mut acc: Option<B::Ct> = None;
        for (j, c) in coeffs.iter().enumerate().skip(1) {
            if c.abs() == 0.0 {
                continue;
            }
            let t = basis[j].as_ref().ok_or(CkksError::InvalidInput {
                reason: format!("chebyshev basis T_{j} missing"),
            })?;
            let t = backend.mod_drop_to_level(t, level)?;
            let t = backend.to_eval_resident(&t)?;
            let term = backend.multiply_const(&t, Complex64::new(*c, 0.0), prime)?;
            acc = Some(match acc {
                None => term,
                Some(prev) => {
                    let (x, y) = backend.align_for_addition(&prev, &term)?;
                    backend.add(&x, &y)?
                }
            });
        }
        let summed = acc.expect("at least one nonzero term");
        let rescaled = backend.rescale(&summed)?;
        backend.add_scalar(&rescaled, Complex64::new(coeffs[0], 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, KeyGenerator, SecretKey};
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn fit_recovers_polynomials_exactly() {
        let series = ChebyshevSeries::fit(|x| 3.0 * x * x * x - x + 0.5, 5, -1.0, 1.0);
        for i in 0..50 {
            let x = -1.0 + 2.0 * i as f64 / 49.0;
            let expected = 3.0 * x * x * x - x + 0.5;
            assert!((series.evaluate(x) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn fit_approximates_transcendental_functions() {
        let series = ChebyshevSeries::fit(f64::exp, 15, -1.0, 1.0);
        assert!(series.max_error(f64::exp, 200) < 1e-10);
        let sine = ChebyshevSeries::fit(|x| (2.0 * std::f64::consts::PI * x).sin(), 31, -3.0, 3.0);
        assert!(
            sine.max_error(|x| (2.0 * std::f64::consts::PI * x).sin(), 500) < 1e-5,
            "error {}",
            sine.max_error(|x| (2.0 * std::f64::consts::PI * x).sin(), 500)
        );
    }

    #[test]
    fn sigmoid_fit_on_wide_domain() {
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let series = ChebyshevSeries::fit(sigmoid, 31, -8.0, 8.0);
        assert!(series.max_error(sigmoid, 400) < 1e-3);
        assert_eq!(series.degree(), 31);
        assert_eq!(series.domain(), (-8.0, 8.0));
    }

    #[test]
    fn odd_functions_have_negligible_even_coefficients() {
        let series = ChebyshevSeries::fit(f64::sin, 21, -1.0, 1.0);
        for (k, c) in series.coefficients().iter().enumerate() {
            if k % 2 == 0 {
                assert!(c.abs() < 1e-12, "even coefficient {k} = {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_domain_panics() {
        let _ = ChebyshevSeries::fit(|x| x, 3, 1.0, 1.0);
    }

    #[test]
    fn homomorphic_evaluation_matches_plain_evaluation() {
        let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(21);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
        let pk = keygen.public_key(&mut rng);
        let rlk = keygen.relinearization_key(&mut rng);
        let encoder = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone(), pk);
        let decryptor = Decryptor::new(ctx.clone(), sk);
        let evaluator = Evaluator::new(ctx.clone());

        // Degree-7 approximation of sigmoid on [-1, 1]; the testing parameters only carry a
        // handful of levels, so keep the BSGS depth small.
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let series = ChebyshevSeries::fit(sigmoid, 7, -1.0, 1.0);

        let values: Vec<f64> = (0..16).map(|i| -0.9 + 0.117 * i as f64).collect();
        let scale = ctx.params().default_scale();
        let pt = encoder
            .encode_real(&values, scale, ctx.params().max_level)
            .unwrap();
        let ct = encryptor.encrypt(&pt, &mut rng).unwrap();

        let result = series.evaluate_homomorphic(&evaluator, &ct, &rlk).unwrap();
        let decoded = encoder.decode_real(&decryptor.decrypt(&result).unwrap());
        for (i, &x) in values.iter().enumerate() {
            let expected = series.evaluate(x);
            assert!(
                (decoded[i] - expected).abs() < 2e-2,
                "slot {i}: {} vs {expected}",
                decoded[i]
            );
        }
    }
}
