//! Table 7 / Figure 2 benchmark: bootstrapping.
//!
//! * `software/*` — pieces of the real bootstrapping pipeline executed by the from-scratch
//!   CKKS implementation at the reduced `bootstrap_testing` parameter set (the CPU baseline);
//! * `model/*` — the accelerator-model bootstrapping cost at the paper's full parameter set,
//!   whose value feeds the Table 7 amortized metric.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{
    bootstrap::BootstrapParams, Bootstrapper, CkksContext, CkksParams, Encoder, Encryptor,
    KeyGenerator, SecretKey,
};
use fab_core::workload::bootstrap_cost;
use fab_core::{amortized_mult_time_us, FabConfig};

fn software_bootstrap(c: &mut Criterion) {
    let ctx = CkksContext::new_arc(CkksParams::bootstrap_testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(2);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let bootstrapper = Bootstrapper::new(
        ctx.clone(),
        BootstrapParams {
            eval_mod_degree: 159,
            k_range: 16.0,
            fft_iter: 3,
            sparse_slots: None,
        },
    )
    .unwrap();
    let keys = keygen
        .galois_keys(&bootstrapper.required_rotations(), true, &mut rng)
        .unwrap();
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| 0.3 * (i as f64 * 0.1).sin())
        .collect();
    let ct = encryptor
        .encrypt(&encoder.encode_real(&values, scale, 0).unwrap(), &mut rng)
        .unwrap();

    let mut group = c.benchmark_group("software_bootstrap");
    group.sample_size(10);
    group.bench_function("mod_raise", |b| {
        b.iter(|| bootstrapper.mod_raise(&ct).unwrap());
    });
    group.bench_function("coeff_to_slot", |b| {
        let raised = bootstrapper.mod_raise(&ct).unwrap();
        b.iter(|| bootstrapper.coeff_to_slot(&raised, &keys).unwrap());
    });
    group.bench_function("eval_mod", |b| {
        let raised = bootstrapper.mod_raise(&ct).unwrap();
        let (real, _imag) = bootstrapper.coeff_to_slot(&raised, &keys).unwrap();
        b.iter(|| bootstrapper.eval_mod(&real, &rlk).unwrap());
    });
    // The full pipeline (tens of seconds per run in software) is exercised end to end by the
    // `bootstrap_pipeline` example and the integration tests; benchmarking it here would
    // dominate the whole bench suite's runtime.
    group.finish();
}

fn model_bootstrap(c: &mut Criterion) {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let mut group = c.benchmark_group("model_bootstrap");
    group.bench_function("table7_amortized_metric", |b| {
        b.iter(|| {
            let boot = bootstrap_cost(&config, &params, params.fft_iter);
            amortized_mult_time_us(
                &config,
                &params,
                &boot,
                params.levels_after_bootstrap(),
                params.slot_count(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, software_bootstrap, model_bootstrap);
criterion_main!(benches);
