//! Naive vs baby-step/giant-step homomorphic linear transforms: the software side of the FAB
//! rotation schedule. `naive/*` applies one (hoisted) key-switched rotation per nonzero
//! diagonal; `bsgs/*` executes the attached [`fab_ckks::BsgsPlan`] — a hoisted baby-step
//! batch plus one giant rotation per group, ~`2·√d` key switches in total — which is the
//! measured wall-clock win the BSGS refactor delivers.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    LinearTransform, SecretKey,
};
use fab_math::Complex64;

struct Fixture {
    evaluator: Evaluator,
    ct: Ciphertext,
    naive: LinearTransform,
    naive_keys: GaloisKeys,
    bsgs: LinearTransform,
    bsgs_keys: GaloisKeys,
}

fn fixture(diagonals: usize) -> Fixture {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let n = ctx.slot_count();
    let mut diag_map = BTreeMap::new();
    for d in 0..diagonals {
        let values: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((i + d) as f64 * 0.13).sin() * 0.5, 0.01 * d as f64))
            .collect();
        diag_map.insert(d, values);
    }
    let naive = LinearTransform::from_diagonals(n, diag_map.clone());
    let bsgs = LinearTransform::from_diagonals(n, diag_map).with_bsgs_plan();
    let naive_keys = keygen
        .galois_keys(&naive.required_rotations(), false, &mut rng)
        .unwrap();
    let bsgs_keys = keygen
        .galois_keys(&bsgs.required_rotations(), false, &mut rng)
        .unwrap();

    let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin()).collect();
    let scale = ctx.params().default_scale();
    let ct = encryptor
        .encrypt(&encoder.encode_real(&values, scale, 3).unwrap(), &mut rng)
        .unwrap();
    Fixture {
        evaluator,
        ct,
        naive,
        naive_keys,
        bsgs,
        bsgs_keys,
    }
}

fn linear_transform_apply(c: &mut Criterion) {
    for diagonals in [8usize, 16] {
        let f = fixture(diagonals);
        let mut group = c.benchmark_group(format!("linear_transform_{diagonals}_diagonals"));
        group.sample_size(10);
        group.bench_function("naive_per_diagonal", |b| {
            b.iter(|| {
                f.naive
                    .apply_homomorphic(&f.evaluator, &f.ct, &f.naive_keys)
                    .unwrap()
            });
        });
        group.bench_function("bsgs_hoisted", |b| {
            b.iter(|| {
                f.bsgs
                    .apply_homomorphic(&f.evaluator, &f.ct, &f.bsgs_keys)
                    .unwrap()
            });
        });
        group.finish();
    }
}

criterion_group!(benches, linear_transform_apply);
criterion_main!(benches);
