//! Table 5 / Table 6 benchmark: basic CKKS operation latency.
//!
//! Two families are measured:
//! * `software/*` — the from-scratch CKKS implementation running on the host CPU (the
//!   reproduction's CPU baseline), at the reduced testing parameter set;
//! * `model/*` — evaluation of the FAB cost model at the paper's full parameter sets, whose
//!   outputs are the Table 5 / Table 6 rows (printed by the `tables` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, SecretKey};
use fab_core::{FabConfig, OpCostModel};

fn software_basic_ops(c: &mut Criterion) {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(1);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let gks = keygen.galois_keys(&[1], false, &mut rng).unwrap();
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    let level = ctx.params().max_level;
    let pt = encoder.encode_real(&values, scale, level).unwrap();
    let ct_a = encryptor.encrypt(&pt, &mut rng).unwrap();
    let ct_b = encryptor.encrypt(&pt, &mut rng).unwrap();

    let mut group = c.benchmark_group("software_basic_ops");
    group.sample_size(10);
    group.bench_function("add", |b| {
        b.iter(|| evaluator.add(&ct_a, &ct_b).unwrap());
    });
    group.bench_function("multiply_plain", |b| {
        b.iter(|| evaluator.multiply_plain(&ct_a, &pt).unwrap());
    });
    group.bench_function("multiply_relin", |b| {
        b.iter(|| evaluator.multiply(&ct_a, &ct_b, &rlk).unwrap());
    });
    group.bench_function("rescale", |b| {
        let product = evaluator.multiply(&ct_a, &ct_b, &rlk).unwrap();
        b.iter(|| evaluator.rescale(&product).unwrap());
    });
    group.bench_function("rotate", |b| {
        b.iter(|| evaluator.rotate(&ct_a, 1, &gks).unwrap());
    });
    group.finish();
}

fn model_basic_ops(c: &mut Criterion) {
    let table5 = OpCostModel::new(FabConfig::alveo_u280(), CkksParams::gpu_comparison());
    let table6 = OpCostModel::new(FabConfig::alveo_u280(), CkksParams::heax_comparison());
    let level = CkksParams::gpu_comparison().max_level;
    let mut group = c.benchmark_group("model_basic_ops");
    group.bench_function("table5_all_ops", |b| {
        b.iter(|| {
            let add = table5.add(level);
            let mult = table5.multiply(level);
            let rescale = table5.rescale(level);
            let rotate = table5.rotate(level);
            (add, mult, rescale, rotate)
        });
    });
    group.bench_function("table6_throughputs", |b| {
        b.iter(|| {
            (
                table6.ntt_throughput_ops(),
                table6.multiply_throughput_ops(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, software_basic_ops, model_basic_ops);
criterion_main!(benches);
