//! Table 8 benchmark: logistic-regression training.
//!
//! * `software/plaintext_iteration` — one full-size HELR iteration in the clear (11,982 × 196);
//! * `software/encrypted_iteration` — one scaled-down encrypted iteration on the CKKS evaluator;
//! * `model/table8` — the accelerator-model FAB-1 / FAB-2 iteration times.

use criterion::{criterion_group, criterion_main, Criterion};

use fab_ckks::{CkksContext, CkksParams};
use fab_core::baselines::HELR_TASK;
use fab_core::FabConfig;
use fab_lr::{
    lr_training_time_s, synthetic_mnist_like, EncryptedLogisticRegression,
    LogisticRegressionTrainer, TrainingConfig,
};

fn plaintext_iteration(c: &mut Criterion) {
    let data = synthetic_mnist_like(HELR_TASK.samples, HELR_TASK.features, 3);
    let mut group = c.benchmark_group("software_lr");
    group.sample_size(10);
    group.bench_function("plaintext_iteration_full_size", |b| {
        b.iter(|| {
            let mut trainer = LogisticRegressionTrainer::new(
                data.feature_count(),
                TrainingConfig {
                    iterations: 1,
                    ..TrainingConfig::default()
                },
            );
            trainer.train(&data)
        });
    });
    group.finish();
}

fn encrypted_iteration(c: &mut Criterion) {
    let params = CkksParams::builder()
        .log_n(12)
        .scale_bits(40)
        .first_prime_bits(60)
        .max_level(12)
        .dnum(4)
        .secret_hamming_weight(Some(64))
        .security_bits(0)
        .build()
        .unwrap();
    let ctx = CkksContext::new_arc(params).unwrap();
    let data = synthetic_mnist_like(16, 16, 5);
    // Key generation happens once; every measured iteration re-encrypts the weights and runs
    // one full encrypted mini-batch iteration.
    let mut trainer = EncryptedLogisticRegression::new(ctx, 16, 7).unwrap();
    let mut group = c.benchmark_group("software_lr");
    group.sample_size(10);
    group.bench_function("encrypted_iteration_scaled_down", |b| {
        b.iter(|| trainer.train(&data, 1, 4, 1.0).unwrap());
    });
    group.finish();
}

fn model_table8(c: &mut Criterion) {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let mut group = c.benchmark_group("model_lr");
    group.bench_function("table8_fab1_fab2", |b| {
        b.iter(|| lr_training_time_s(&config, &params, &HELR_TASK, 8, 0.012));
    });
    group.finish();
}

criterion_group!(
    benches,
    plaintext_iteration,
    encrypted_iteration,
    model_table8
);
criterion_main!(benches);
