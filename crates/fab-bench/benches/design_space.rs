//! Figure 1 / Figure 2 benchmark: design-space sweeps over `dnum` and `ﬀtIter`.

use criterion::{criterion_group, criterion_main, Criterion};

use fab_ckks::CkksParams;
use fab_core::{dnum_sweep, fft_iter_sweep, FabConfig};

fn sweeps(c: &mut Criterion) {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let mut group = c.benchmark_group("design_space");
    group.bench_function("figure1_dnum_sweep", |b| {
        b.iter(|| dnum_sweep(&params, 32, params.bootstrap_depth(), &[1, 2, 3, 4, 5, 6]));
    });
    group.bench_function("figure2_fft_iter_sweep", |b| {
        b.iter(|| fft_iter_sweep(&config, &params, &[1, 2, 3, 4, 5, 6]));
    });
    group.finish();
}

criterion_group!(benches, sweeps);
criterion_main!(benches);
