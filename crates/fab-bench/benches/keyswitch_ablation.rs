//! Ablation of the paper's key architectural choices (Section 4.6): the modified KeySwitch
//! datapath versus the original one, hoisted versus independent rotations, and the software
//! key switch that acts as the CPU reference.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, SecretKey};
use fab_core::{FabConfig, KeySwitchDatapath, OpCostModel};

fn model_datapath_ablation(c: &mut Criterion) {
    let params = CkksParams::fab_paper();
    let level = params.max_level;
    let modified = OpCostModel::new(FabConfig::alveo_u280(), params.clone());
    let mut original_config = FabConfig::alveo_u280();
    original_config.keyswitch_datapath = KeySwitchDatapath::Original;
    let original = OpCostModel::new(original_config, params.clone());
    let mut no_hoist_config = FabConfig::alveo_u280();
    no_hoist_config.hoisting = false;
    let no_hoist = OpCostModel::new(no_hoist_config, params);

    let mut group = c.benchmark_group("model_keyswitch_ablation");
    group.bench_function("modified_datapath", |b| {
        b.iter(|| modified.key_switch(level));
    });
    group.bench_function("original_datapath", |b| {
        b.iter(|| original.key_switch(level));
    });
    group.bench_function("hoisted_rotation", |b| {
        b.iter(|| modified.rotate_hoisted(level));
    });
    group.bench_function("unhoisted_rotation", |b| {
        b.iter(|| no_hoist.rotate_hoisted(level));
    });
    group.finish();
}

fn software_keyswitch(c: &mut Criterion) {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(11);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let pt = encoder
        .encode_real(&[1.0, 2.0, 3.0], scale, ctx.params().max_level)
        .unwrap();
    let ct = encryptor.encrypt(&pt, &mut rng).unwrap();

    let mut group = c.benchmark_group("software_keyswitch");
    group.sample_size(10);
    group.bench_function("relinearising_keyswitch", |b| {
        b.iter(|| evaluator.key_switch(ct.c1(), &rlk.key, ct.level()).unwrap());
    });
    group.finish();
}

criterion_group!(benches, model_datapath_ablation, software_keyswitch);
criterion_main!(benches);
