//! Arithmetic-kernel benchmarks: NTT/iNTT, modular multiplication variants (Barrett, Shoup and
//! the paper's Algorithm 1 shift-add reduction) and the special FFT used by the encoder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use fab_math::{Complex64, Modulus, NttTable, ShiftAddReducer, SpecialFft};

fn ntt_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    group.sample_size(20);
    for log_n in [12usize, 14, 16] {
        let n = 1usize << log_n;
        let q = fab_math::generate_ntt_prime(54, n, 0).unwrap();
        let table = NttTable::new(n, Modulus::new(q).unwrap()).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(log_n as u64);
        let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        group.bench_with_input(BenchmarkId::new("forward", log_n), &poly, |b, p| {
            b.iter(|| {
                let mut data = p.clone();
                table.forward(&mut data);
                data
            });
        });
        group.bench_with_input(BenchmarkId::new("inverse", log_n), &poly, |b, p| {
            b.iter(|| {
                let mut data = p.clone();
                table.inverse(&mut data);
                data
            });
        });
    }
    group.finish();
}

fn modular_multiplication(c: &mut Criterion) {
    let q = fab_math::generate_ntt_prime(54, 1 << 16, 0).unwrap();
    let modulus = Modulus::new(q).unwrap();
    let reducer = ShiftAddReducer::new(modulus.clone(), 6).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let pairs: Vec<(u64, u64)> = (0..4096)
        .map(|_| (rng.gen_range(0..q), rng.gen_range(0..q)))
        .collect();
    let shoup_b = pairs[0].1;
    let shoup = modulus.shoup_precompute(shoup_b);

    let mut group = c.benchmark_group("modular_multiplication_4096");
    group.bench_function("barrett", |b| {
        b.iter(|| {
            pairs
                .iter()
                .fold(0u64, |acc, &(x, y)| acc ^ modulus.mul(x, y))
        });
    });
    group.bench_function("shoup_fixed_operand", |b| {
        b.iter(|| {
            pairs.iter().fold(0u64, |acc, &(x, _)| {
                acc ^ modulus.mul_shoup(x, shoup_b, shoup)
            })
        });
    });
    group.bench_function("shift_add_algorithm1", |b| {
        b.iter(|| {
            pairs
                .iter()
                .fold(0u64, |acc, &(x, y)| acc ^ reducer.mul(x, y))
        });
    });
    group.finish();
}

fn special_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("special_fft");
    for log_n in [12usize, 14] {
        let fft = SpecialFft::new(1 << log_n).unwrap();
        let slots: Vec<Complex64> = (0..fft.slots())
            .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("encode_side_ifft", log_n),
            &slots,
            |b, s| {
                b.iter(|| {
                    let mut w = s.clone();
                    fft.inverse(&mut w);
                    w
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ntt_benchmarks, modular_multiplication, special_fft);
criterion_main!(benches);
