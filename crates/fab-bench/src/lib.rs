//! # fab-bench
//!
//! Benchmark harness for the FAB reproduction: the [`tables`] module regenerates every table
//! and figure of the paper's evaluation section from the accelerator model, the software CKKS
//! implementation and the published baseline constants; the [`summary`] module folds the
//! committed `BENCH_pr*.json` files into the README's perf-trajectory table; the Criterion
//! benches under `benches/` measure the software kernels that act as the CPU baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod summary;
pub mod tables;

pub use tables::{render_all, render_experiment, Experiment};

/// Number of cores the container actually exposes (1 when detection fails).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Whether timing-derived *scaling or latency* conclusions recorded on this machine are
/// untrustworthy — i.e. the container reports a single core, so thread sweeps measure
/// oversubscription and concurrent-latency numbers carry scheduler noise. Prints **one**
/// stderr warning (mentioning `what`) when that is the case; benches record the returned
/// flag once at the top level of their JSON instead of repeating it per row.
pub fn warn_untrusted_scaling(what: &str) -> bool {
    let cores = available_cores();
    if cores == 1 {
        eprintln!(
            "WARNING: this container reports 1 available core. {what} are flagged \
             \"untrusted_scaling\": true in the output JSON — rerun on a multi-core machine \
             for trustworthy numbers."
        );
    }
    cores == 1
}
