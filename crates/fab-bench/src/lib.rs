//! # fab-bench
//!
//! Benchmark harness for the FAB reproduction: the [`tables`] module regenerates every table
//! and figure of the paper's evaluation section from the accelerator model, the software CKKS
//! implementation and the published baseline constants; the Criterion benches under `benches/`
//! measure the software kernels that act as the CPU baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tables;

pub use tables::{render_all, render_experiment, Experiment};
