//! Regenerates the paper's evaluation tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p fab-bench --bin tables --release            # everything
//! cargo run -p fab-bench --bin tables --release -- table7  # a single experiment
//! ```

use fab_bench::{render_all, render_experiment, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "all") {
        print!("{}", render_all());
        return;
    }
    for arg in &args {
        match Experiment::parse(arg) {
            Some(experiment) => print!("{}", render_experiment(experiment)),
            None => {
                eprintln!(
                    "unknown experiment '{arg}'; expected one of table2..table8, figure1, figure2, leveled, all"
                );
                std::process::exit(1);
            }
        }
    }
}
