//! Software roofline: streaming-bandwidth baseline, then GB/s vs op/s per kernel from the
//! PR 7 byte meter and wall time, written to `BENCH_pr7.json`.
//!
//! FAB's central claim (Tables 5–6) is that bootstrappable CKKS is memory-limited. This bin
//! closes the software side of that loop: every hot kernel's *metered* DRAM-order bytes
//! (asserted equal to the `fab_ckks::accounting` closed forms before any timing — zero
//! drift) are divided by measured wall time to place the kernel on a roofline against a
//! measured streaming-bandwidth baseline. The metered bytes are cache-oblivious (a blocked
//! NTT charges exactly what a linear one does), so effective kernel GB/s *above* the
//! DRAM streaming baseline is positive evidence of cache residency — the software analog of
//! FAB keeping the working set in URAM/BRAM.
//!
//! The bin also reports the cache-blocked NTT (four-step tiling, PR 7) against the linear
//! traversal at `N = 2^16`, single-threaded, after asserting bitwise equality. The runtime
//! probe decides per machine: on this container's 260 MiB L3 a 512 KiB row is close to
//! cache-resident, so the measured ratio hovers between ~1.0× (linear retained, nothing to
//! recover) and ~1.2× (tiling wins on L1/L2 reuse of the contiguous tail stages); rows that
//! exceed the last-level working set are where the four-step decomposition pays off most.
//!
//! Gates (both modes; `--quick` is the CI smoke):
//!
//! * blocked NTT bitwise-equal to the retained linear path (several block lengths);
//! * zero bytes-count drift: recorded == closed form for key_switch, multiply,
//!   multiply_rescale, hoisted rotation batch and the BSGS stage;
//! * blocked-vs-linear single-thread speedup above a conservative floor (0.7 — a
//!   catastrophic-regression guard, same pattern as the kernels bin);
//! * the `fab-core` [`fab_core::SoftwareTrafficModel`] within its stated tolerance of the
//!   metered key-switch traffic.
//!
//! Usage: `cargo run --release -p fab-bench --bin roofline [-- --quick] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use fab_ckks::accounting;
use fab_ckks::{
    CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, LinearTransform,
    SecretKey,
};
use fab_core::SoftwareTrafficModel;
use fab_math::{ntt_block_len, Complex64, Modulus, NttTable, NTT_BLOCK_LINEAR};
use fab_rns::metering;

/// Conservative single-thread floor for the blocked NTT vs the linear traversal: a
/// catastrophic-regression guard (the probe may legitimately retain the linear path, in
/// which case the ratio sits at ~1.0).
const BLOCKED_NTT_FLOOR: f64 = 0.7;

/// One kernel placed on the roofline.
struct Row {
    kernel: &'static str,
    n: usize,
    limbs: usize,
    bytes_read: u64,
    bytes_written: u64,
    ns_per_op: f64,
    note: &'static str,
}

impl Row {
    fn gbps(&self) -> f64 {
        (self.bytes_read + self.bytes_written) as f64 / self.ns_per_op
    }

    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Meters one op (bytes via the thread-local counters) and times it.
fn measure(
    kernel: &'static str,
    n: usize,
    limbs: usize,
    iters: usize,
    note: &'static str,
    mut f: impl FnMut(),
) -> Row {
    f(); // warm caches and lazy setup before metering a representative op
    let before = metering::byte_counts();
    f();
    let bytes = metering::byte_counts().since(&before);
    let ns_per_op = time_ns(iters, &mut f);
    Row {
        kernel,
        n,
        limbs,
        bytes_read: bytes.read,
        bytes_written: bytes.written,
        ns_per_op,
        note,
    }
}

/// Streaming bandwidth of this machine: a read sweep (sum) and a copy sweep over buffers
/// far larger than the last-level cache (full mode), best of three.
fn streaming_baseline(mib: usize) -> (f64, f64) {
    let words = mib * 1024 * 1024 / 8;
    let mut state = 0x9E3779B97F4A7C15u64;
    let src: Vec<u64> = (0..words)
        .map(|_| {
            state = state.wrapping_mul(0xD1342543DE82EF95).wrapping_add(1);
            state
        })
        .collect();
    let bytes = (words * 8) as f64;

    let mut read_gbps = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut acc = 0u64;
        for &x in &src {
            acc = acc.wrapping_add(x);
        }
        std::hint::black_box(acc);
        read_gbps = read_gbps.max(bytes / start.elapsed().as_nanos() as f64);
    }

    // Copy sweep over the front half into the back-half-sized destination: reads + writes.
    let half = words / 2;
    let mut dst = vec![0u64; half];
    let mut copy_gbps = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        dst.copy_from_slice(&src[..half]);
        std::hint::black_box(&dst);
        copy_gbps = copy_gbps.max((half * 8 * 2) as f64 / start.elapsed().as_nanos() as f64);
    }
    (read_gbps, copy_gbps)
}

/// Asserts the blocked transforms equal the linear ones bitwise (probed block plus forced
/// tiny/huge blocks), then times blocked vs linear forward+inverse single-threaded and
/// returns `(linear_ns, blocked_ns, speedup)`.
fn blocked_ntt_speedup(log_n: usize, iters: usize) -> (f64, f64, f64) {
    let n = 1usize << log_n;
    let q = fab_math::generate_ntt_prime(54, n, 0).expect("54-bit NTT prime");
    let table = NttTable::new(n, Modulus::new(q).expect("modulus")).expect("NTT table");
    let mut rng = ChaCha20Rng::seed_from_u64(log_n as u64);
    let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();

    // Bitwise gate across block lengths, including the degenerate tilings.
    let mut linear = poly.clone();
    table.forward_with_block(&mut linear, NTT_BLOCK_LINEAR);
    for block in [2usize, 64, 4096, ntt_block_len(), n, 2 * n] {
        let mut blocked = poly.clone();
        table.forward_with_block(&mut blocked, block);
        assert_eq!(blocked, linear, "blocked forward diverged at block {block}");
        table.inverse_with_block(&mut blocked, block);
        assert_eq!(blocked, poly, "blocked inverse diverged at block {block}");
    }

    let block = ntt_block_len();
    let mut data = poly.clone();
    let linear_ns = time_ns(iters, || {
        table.forward_with_block(&mut data, NTT_BLOCK_LINEAR);
        table.inverse_with_block(&mut data, NTT_BLOCK_LINEAR);
    });
    let blocked_ns = time_ns(iters, || {
        table.forward_with_block(&mut data, block);
        table.inverse_with_block(&mut data, block);
    });
    std::hint::black_box(&data);
    (linear_ns, blocked_ns, linear_ns / blocked_ns)
}

/// Builds the evaluator fixture and produces the metered kernel rows, asserting zero bytes
/// drift against the closed-form accounting formulas before any timing.
#[allow(clippy::too_many_lines)]
fn kernel_rows(
    params: CkksParams,
    diagonals: usize,
    iters: usize,
    rows: &mut Vec<Row>,
) -> (u64, u64) {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(1717);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let galois = keygen
        .galois_keys(&[1, 2, 5], false, &mut rng)
        .expect("galois keys");
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let level = ctx.params().max_level;
    let degree = ctx.degree();
    let (limbs, special, alpha) = (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    );
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.11).cos())
        .collect();
    let ct_a = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");
    let ct_b = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");
    let basis = ctx.basis_at_level(level).expect("basis");
    let d = fab_ckks::sampling::sample_uniform(&mut rng, &basis);

    // Zero-drift gates: recorded bytes must equal the closed forms exactly.
    let check = |observed: metering::ByteCounts, expected: metering::ByteCounts, what: &str| {
        assert_eq!(
            observed, expected,
            "{what} recorded bytes drifted from the closed-form formula"
        );
    };
    let before = metering::byte_counts();
    std::hint::black_box(
        evaluator
            .key_switch(&d, &rlk.key, level)
            .expect("key switch"),
    );
    let ks_metered = metering::byte_counts().since(&before);
    check(
        ks_metered,
        accounting::key_switch_bytes(degree, limbs, special, alpha),
        "key_switch",
    );
    let before = metering::byte_counts();
    std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply"));
    check(
        metering::byte_counts().since(&before),
        accounting::multiply_bytes(degree, limbs, special, alpha),
        "multiply",
    );
    let before = metering::byte_counts();
    std::hint::black_box(
        evaluator
            .multiply_rescale(&ct_a, &ct_b, &rlk)
            .expect("multiply_rescale"),
    );
    check(
        metering::byte_counts().since(&before),
        accounting::multiply_rescale_bytes(degree, limbs, special, alpha),
        "multiply_rescale",
    );
    let before = metering::byte_counts();
    std::hint::black_box(
        evaluator
            .rotate_hoisted_batch(&ct_a, &[1, 0, 2, 5], &galois)
            .expect("hoisted batch"),
    );
    check(
        metering::byte_counts().since(&before),
        accounting::hoisted_rotation_batch_bytes(degree, limbs, special, alpha, 3),
        "hoisted rotation batch",
    );

    // BSGS stage (eval-resident): gate the steady-state bytes, then time the steady state.
    let n_slots = ctx.slot_count();
    let mut diag_map = std::collections::BTreeMap::new();
    for di in 0..diagonals {
        let vals: Vec<Complex64> = (0..n_slots)
            .map(|i| Complex64::new(((i + di) as f64 * 0.13).sin() * 0.5, 0.01 * di as f64))
            .collect();
        diag_map.insert(di, vals);
    }
    let transform = LinearTransform::from_diagonals(n_slots, diag_map).with_bsgs_plan();
    let plan = transform.bsgs_plan().expect("plan attached").clone();
    let bsgs_keys = keygen
        .galois_keys(&transform.required_rotations(), false, &mut rng)
        .expect("galois keys");
    let bsgs_level = 3.min(level);
    let bsgs_limbs = bsgs_level + 1;
    let bsgs_ct = encryptor
        .encrypt(
            &encoder
                .encode_real(&values, scale, bsgs_level)
                .expect("encode"),
            &mut rng,
        )
        .expect("encrypt");
    std::hint::black_box(
        transform
            .apply_homomorphic(&evaluator, &bsgs_ct, &bsgs_keys)
            .expect("warm apply"),
    );
    let before = metering::byte_counts();
    std::hint::black_box(
        transform
            .apply_homomorphic(&evaluator, &bsgs_ct, &bsgs_keys)
            .expect("steady apply"),
    );
    check(
        metering::byte_counts().since(&before),
        accounting::bsgs_stage_eval_bytes(
            degree,
            bsgs_limbs,
            special,
            alpha,
            &plan,
            transform.diagonal_count(),
            false,
        ),
        "eval-resident BSGS stage",
    );

    // Roofline rows (single-threaded — the meter is thread-invariant, the timing is not).
    fab_par::set_threads(1);
    rows.push(measure(
        "key_switch",
        degree,
        limbs,
        iters,
        "hybrid key switch, coefficient entry",
        || {
            std::hint::black_box(
                evaluator
                    .key_switch(&d, &rlk.key, level)
                    .expect("key switch"),
            );
        },
    ));
    rows.push(measure(
        "multiply",
        degree,
        limbs,
        iters,
        "dual-form multiply with relinearisation",
        || {
            std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply"));
        },
    ));
    rows.push(measure(
        "multiply_rescale",
        degree,
        limbs,
        iters,
        "fused ModDown+rescale multiply",
        || {
            std::hint::black_box(
                evaluator
                    .multiply_rescale(&ct_a, &ct_b, &rlk)
                    .expect("multiply_rescale"),
            );
        },
    ));
    rows.push(measure(
        "hoisted_rotation_batch",
        degree,
        limbs,
        iters,
        "3 key-switched rotations + 1 free step, one shared digit raise",
        || {
            std::hint::black_box(
                evaluator
                    .rotate_hoisted_batch(&ct_a, &[1, 0, 2, 5], &galois)
                    .expect("hoisted batch"),
            );
        },
    ));
    rows.push(measure(
        "bsgs_stage_steady",
        degree,
        bsgs_limbs,
        iters,
        "eval-resident BSGS linear transform, NTT-cached diagonals (steady state)",
        || {
            std::hint::black_box(
                transform
                    .apply_homomorphic(&evaluator, &bsgs_ct, &bsgs_keys)
                    .expect("steady apply"),
            );
        },
    ));

    // Calibration: the fab-core analytical model must sit within its stated tolerance of
    // the metered key-switch traffic.
    let model = SoftwareTrafficModel::new(ctx.params());
    let modelled = model.key_switch_bytes(limbs, special, alpha);
    let metered = ks_metered.total();
    let deviation = (modelled as f64 - metered as f64).abs() / metered as f64;
    assert!(
        deviation <= SoftwareTrafficModel::TOLERANCE,
        "fab-core traffic model deviates {deviation:.3} from metered key-switch bytes \
         ({modelled} vs {metered}), tolerance {}",
        SoftwareTrafficModel::TOLERANCE
    );
    (modelled, metered)
}

/// Single-limb NTT rows at a given size, driven through the metered `fab-rns` conversion
/// entry points (the byte meter charges at the RNS layer, not inside `fab-math`).
fn ntt_rows(log_n: usize, iters: usize, rows: &mut Vec<Row>) {
    let n = 1usize << log_n;
    let q = fab_math::generate_ntt_prime(54, n, 0).expect("54-bit NTT prime");
    let basis = fab_rns::RnsBasis::new(n, vec![Modulus::new(q).expect("modulus")]).expect("basis");
    let mut rng = ChaCha20Rng::seed_from_u64(77);
    let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
    let mut p = fab_rns::RnsPolynomial::from_flat(n, data, fab_rns::Representation::Coefficient);
    rows.push(measure(
        "ntt_forward",
        n,
        1,
        iters,
        "canonical forward NTT, one 54-bit limb",
        || {
            p.set_representation(fab_rns::Representation::Coefficient);
            p.to_evaluation(&basis);
        },
    ));
    rows.push(measure(
        "ntt_inverse",
        n,
        1,
        iters,
        "inverse NTT (fused N^-1), one 54-bit limb",
        || {
            p.set_representation(fab_rns::Representation::Evaluation);
            p.to_coefficient(&basis);
        },
    ));
    std::hint::black_box(&p);
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    cores: usize,
    untrusted: bool,
    baseline_mib: usize,
    read_gbps: f64,
    copy_gbps: f64,
    ntt_block: usize,
    blocked: (f64, f64, f64),
    calibration: (u64, u64),
    rows: &[Row],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"fab-bench roofline bin (PR 7)\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"cores_available\": {cores},");
    let _ = writeln!(out, "  \"untrusted_scaling\": {untrusted},");
    let _ = writeln!(
        out,
        "  \"bytes_convention\": \"row-pass granularity over the flat limb-major layout; 8 bytes per u64 word, 16 per u128 accumulator word; constant twiddle/weight tables (FAB ROM analogs) excluded; cache-oblivious, so kernel GB/s above the streaming baseline evidences cache residency\","
    );
    let _ = writeln!(
        out,
        "  \"streaming_baseline\": {{\"buffer_mib\": {baseline_mib}, \"read_gbps\": {read_gbps:.2}, \"copy_gbps\": {copy_gbps:.2}}},"
    );
    let block_desc = if ntt_block >= NTT_BLOCK_LINEAR {
        "linear (probe found no tiling win: rows fit in cache)".to_string()
    } else {
        format!("{ntt_block}")
    };
    let _ = writeln!(
        out,
        "  \"blocked_ntt\": {{\"n\": 65536, \"selected_block\": \"{block_desc}\", \"linear_ns_per_op\": {:.0}, \"blocked_ns_per_op\": {:.0}, \"speedup\": {:.3}, \"note\": \"forward+inverse pair, single thread, bitwise-equal paths; ratios near 1.0 mean the 512 KiB row was already resident in this container's 260 MiB L3 and the probe may retain the linear traversal\"}},",
        blocked.0, blocked.1, blocked.2
    );
    let _ = writeln!(
        out,
        "  \"calibration\": {{\"model\": \"fab_core::SoftwareTrafficModel::key_switch_bytes\", \"modelled_bytes\": {}, \"metered_bytes\": {}, \"deviation\": {:.4}, \"tolerance\": {}}},",
        calibration.0,
        calibration.1,
        (calibration.0 as f64 - calibration.1 as f64).abs() / calibration.1 as f64,
        SoftwareTrafficModel::TOLERANCE
    );
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"kernel\": \"{}\", \"n\": {}, \"limbs\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \"ns_per_op\": {:.0}, \"gbps\": {:.2}, \"ops_per_sec\": {:.1}, \"note\": \"{}\"",
            r.kernel,
            r.n,
            r.limbs,
            r.bytes_read,
            r.bytes_written,
            r.ns_per_op,
            r.gbps(),
            r.ops_per_sec(),
            r.note
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "target/BENCH_roofline_quick.json".to_string()
            } else {
                "BENCH_pr7.json".to_string()
            }
        });
    let cores = fab_bench::available_cores();
    let untrusted = fab_bench::warn_untrusted_scaling("Latency-derived roofline figures");

    let baseline_mib = if quick { 64 } else { 1024 };
    let (read_gbps, copy_gbps) = streaming_baseline(baseline_mib);

    // Blocked NTT: always gate bitwise at N = 2^16 (the acceptance size); quick uses fewer
    // timing iterations, not a smaller ring.
    let blocked = blocked_ntt_speedup(16, if quick { 3 } else { 25 });
    assert!(
        blocked.2 >= BLOCKED_NTT_FLOOR,
        "blocked NTT is only {:.2}x the linear traversal (floor {BLOCKED_NTT_FLOOR})",
        blocked.2
    );

    let mut rows = Vec::new();
    let calibration = if quick {
        ntt_rows(10, 50, &mut rows);
        let params = CkksParams::builder()
            .log_n(10)
            .scale_bits(40)
            .first_prime_bits(40)
            .max_level(3)
            .dnum(2)
            .build()
            .expect("quick params");
        kernel_rows(params, 4, 3, &mut rows)
    } else {
        ntt_rows(16, 25, &mut rows);
        kernel_rows(CkksParams::testing(), 16, 10, &mut rows)
    };

    let json = render_json(
        if quick { "quick" } else { "full" },
        cores,
        untrusted,
        baseline_mib,
        read_gbps,
        copy_gbps,
        ntt_block_len(),
        blocked,
        calibration,
        &rows,
    );
    print!("{json}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write roofline JSON");
    eprintln!("wrote {out_path}");
}
