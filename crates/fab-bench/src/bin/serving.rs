//! Multi-tenant serving benchmark: key-cache hit rate and end-to-end tail latency versus
//! tenant count and cache budget, written to a machine-readable `BENCH_pr6.json`.
//!
//! A fixed, seeded request stream (interleaved tenants, repeated small programs drawing
//! rotations from a shared working set) is served by [`fab_serve::FabServer`] at three cache
//! budgets — 25%, 50% and 100% of the tenant mix's total serialized key bytes — with
//! trace-driven prefetch on and off. Before any number is reported, the outputs of every
//! budget/prefetch configuration are asserted **bitwise equal** to the generous-cache
//! reference: cache state may only move latency, never a ciphertext bit (the same gate the
//! `fab-serve` proptests enforce per op).
//!
//! The identical request stream is also priced on the accelerator model: FAB-1 (one Alveo
//! U280) via [`fab_core::OpCostModel::cost_trace`] over the aggregated planned trace, and
//! FAB-2 (two boards, request-parallel, CMAC broadcast per request input) via
//! [`fab_core::MultiFpgaSystem`] — the serving-throughput comparison of the paper's
//! multi-FPGA section, driven by the exact op stream the software server executed.
//!
//! Latency percentiles recorded on a single-core container carry scheduler noise; the shared
//! [`fab_bench::warn_untrusted_scaling`] helper flags the whole file once at the top level.
//!
//! After the sweep, a **chaos gate** replays the largest tenant mix under a seeded
//! [`fab_serve::FaultPlan`] (corrupt key blobs, fail-then-recover fetches, slow fetches on a
//! deterministic clock) plus scheduled mid-stream cache evictions, and asserts the
//! fault-isolation contract before writing fault-rate/recovery rows to `BENCH_pr8.json`:
//! every submitted request yields exactly one outcome, healthy tenants' outputs stay bitwise
//! equal to the fault-free run, corrupt tenants fail with typed permanent errors, and flaky
//! tenants recover within the stream.
//!
//! Usage: `cargo run --release -p fab-bench --bin serving [-- --quick] [--out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{
    key_set_bytes, Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys,
    KeyGenerator, RelinearizationKey, SecretKey,
};
use fab_core::{
    CommunicationModel, FabConfig, MultiFpgaSystem, OpCost, OpCostModel, ParallelWorkload,
};
use fab_serve::{
    CacheStats, FabServer, FakeClock, FaultPlan, Program, Request, RequestOutcome, ServeFault,
    ServedRequest, ServerConfig, TenantId,
};
use fab_trace::OpTrace;

/// Rotation working set every tenant holds keys for (plus conjugation and relin).
const ROTATIONS: [usize; 2] = [1, 3];
/// Minimum demand hit rate at the full budget with prefetch on — the CI gate.
const HIT_RATE_FLOOR: f64 = 0.8;

struct TenantMaterial {
    rlk: RelinearizationKey,
    keys: GaloisKeys,
    input: Ciphertext,
}

fn make_tenants(ctx: &Arc<CkksContext>, count: usize) -> Vec<TenantMaterial> {
    (0..count)
        .map(|t| {
            let mut rng = ChaCha20Rng::seed_from_u64(0xFAB0 + t as u64);
            let sk = SecretKey::generate(ctx, &mut rng);
            let keygen = KeyGenerator::new(ctx.clone(), sk);
            let pk = keygen.public_key(&mut rng);
            let rlk = keygen.relinearization_key(&mut rng);
            let keys = keygen
                .galois_keys(&ROTATIONS, true, &mut rng)
                .expect("galois keys");
            let encoder = Encoder::new(ctx.clone());
            let encryptor = Encryptor::new(ctx.clone(), pk);
            let scale = ctx.params().default_scale();
            let values: Vec<f64> = (0..ctx.slot_count())
                .map(|i| ((i + t) as f64 * 0.19).sin())
                .collect();
            let pt = encoder
                .encode_real(&values, scale, ctx.params().max_level)
                .expect("encode");
            let input = encryptor.encrypt(&pt, &mut rng).expect("encrypt");
            TenantMaterial { rlk, keys, input }
        })
        .collect()
}

/// The fixed request stream for a tenant mix: `rounds` rounds of one request per tenant,
/// interleaved, with a seeded per-round program shared by all tenants (the repeated-workload
/// pattern a key cache exists for).
fn request_stream(tenants: &[TenantMaterial], rounds: u64, ops_per_request: usize) -> Vec<Request> {
    let mut stream = Vec::new();
    for round in 0..rounds {
        for (t, tenant) in tenants.iter().enumerate() {
            stream.push(Request {
                tenant: TenantId(t as u32),
                program: Program::random(11 + round, ops_per_request, &ROTATIONS),
                input: tenant.input.clone(),
            });
        }
    }
    stream
}

struct ConfigResult {
    tenants: usize,
    budget_bytes: usize,
    budget_fraction: f64,
    prefetch: bool,
    stats: CacheStats,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_us: f64,
    requests: usize,
    outputs: Vec<Ciphertext>,
}

fn run_config(
    ctx: &Arc<CkksContext>,
    tenants: &[TenantMaterial],
    budget_bytes: usize,
    budget_fraction: f64,
    prefetch: bool,
    rounds: u64,
    ops_per_request: usize,
) -> ConfigResult {
    let mut server = FabServer::new(
        Evaluator::new(ctx.clone()),
        ServerConfig {
            cache_budget_bytes: budget_bytes,
            prefetch,
            lookahead: 2 + ROTATIONS.len(),
            ..ServerConfig::default()
        },
    );
    for (t, tenant) in tenants.iter().enumerate() {
        server.register_tenant(TenantId(t as u32), &tenant.rlk, &tenant.keys);
    }
    for request in request_stream(tenants, rounds, ops_per_request) {
        server.submit(request);
    }
    let served: Vec<ServedRequest> = server
        .run()
        .into_iter()
        .map(|outcome| match outcome {
            RequestOutcome::Completed(served) => served,
            other => panic!("fault-free sweep must complete every request: {other:?}"),
        })
        .collect();
    let histogram = server.histogram();
    ConfigResult {
        tenants: tenants.len(),
        budget_bytes,
        budget_fraction,
        prefetch,
        stats: server.cache_stats(),
        p50_us: histogram.p50().expect("non-empty run"),
        p95_us: histogram.p95().expect("non-empty run"),
        p99_us: histogram.p99().expect("non-empty run"),
        mean_us: histogram.mean_us().expect("non-empty run"),
        requests: served.len(),
        outputs: served.into_iter().map(|s| s.output).collect(),
    }
}

/// FAB-1 / FAB-2 pricing of the whole request stream from its aggregated planned trace.
struct Pricing {
    ops: usize,
    fab1_ms: f64,
    fab2_ms: f64,
    fab2_speedup: f64,
}

fn price_stream(
    ctx: &Arc<CkksContext>,
    tenants: &[TenantMaterial],
    rounds: u64,
    ops: usize,
) -> Pricing {
    let params = ctx.params().clone();
    let start_level = params.max_level;
    let scale = params.default_scale();
    let mut aggregate = OpTrace::new("serving stream");
    for request in request_stream(tenants, rounds, ops) {
        let trace = request
            .program
            .plan(ctx, start_level, scale, "request")
            .expect("plan request");
        aggregate.ops.extend(trace.ops);
    }

    let config = FabConfig::alveo_u280();
    let model = OpCostModel::new(config.clone(), params.clone());
    let stream_cost = model.cost_trace(&aggregate);
    let fab1_ms = stream_cost.time_ms(&config);

    // FAB-2: requests are independent, so the stream is fully request-parallel across two
    // boards; each request pays one CMAC broadcast of its input ciphertext (2 polynomials of
    // `L+1` limbs) to reach its board.
    let system = MultiFpgaSystem::new(config.clone(), 2);
    let workload = ParallelWorkload {
        parallel: stream_cost,
        serial: OpCost::default(),
    };
    let limb_bytes = params.degree() * 8;
    let request_count = tenants.len() as f64 * rounds as f64;
    let comm_ms = CommunicationModel::new(&config).broadcast_ms(
        2 * (params.max_level + 1),
        limb_bytes,
        system.num_fpgas(),
    ) * request_count;
    let fab2_ms = system.execute_ms(&workload, comm_ms);
    Pricing {
        ops: aggregate.ops.len(),
        fab1_ms,
        fab2_ms,
        fab2_speedup: system.speedup_over_single(&workload, comm_ms),
    }
}

/// What kind of fault a chaos-plan spec injects, for per-tenant gate selection.
fn fault_kind(spec: &fab_serve::FaultSpec) -> &'static str {
    if spec.corrupt_bit.is_some() {
        "corrupt"
    } else if spec.fail_fetches > 0 {
        "flaky"
    } else {
        "slow"
    }
}

/// The chaos gate: replays the request stream under a seeded fault plan plus scheduled
/// cache evictions, asserts the fault-isolation contract, and returns the JSON report.
fn chaos_gate(
    ctx: &Arc<CkksContext>,
    tenants: &[TenantMaterial],
    rounds: u64,
    ops_per_request: usize,
    per_set_bytes: usize,
    mode: &str,
) -> String {
    let seed = 0xC4A0_5008u64;
    let fault_rate = 0.5;
    let config = ServerConfig {
        cache_budget_bytes: tenants.len() * per_set_bytes / 2,
        prefetch: true,
        lookahead: 2 + ROTATIONS.len(),
        ..ServerConfig::default()
    };
    let register = |server: &mut FabServer| {
        for (t, tenant) in tenants.iter().enumerate() {
            server.register_tenant(TenantId(t as u32), &tenant.rlk, &tenant.keys);
        }
    };

    // Fault-free reference under the same deterministic clock.
    let mut reference = FabServer::new(Evaluator::new(ctx.clone()), config);
    reference.use_fake_clock(Arc::new(FakeClock::with_step(1)));
    register(&mut reference);
    for request in request_stream(tenants, rounds, ops_per_request) {
        reference.submit(request);
    }
    let reference_outputs: Vec<Ciphertext> = reference
        .run()
        .into_iter()
        .map(|outcome| match outcome {
            RequestOutcome::Completed(served) => served.output,
            other => panic!("fault-free reference must complete every request: {other:?}"),
        })
        .collect();

    // Chaos run: seeded per-tenant faults plus mid-stream LRU evictions.
    let tenant_ids: Vec<TenantId> = (0..tenants.len()).map(|t| TenantId(t as u32)).collect();
    let plan = FaultPlan::random(seed, &tenant_ids, fault_rate);
    let kinds: std::collections::BTreeMap<TenantId, &'static str> = plan
        .specs
        .iter()
        .map(|(tenant, spec)| (*tenant, fault_kind(spec)))
        .collect();
    let mut server = FabServer::new(Evaluator::new(ctx.clone()), config);
    server.use_fake_clock(Arc::new(FakeClock::with_step(1)));
    register(&mut server);
    plan.apply(&mut server);
    server.cache_mut().schedule_chaos_evictions(&[5, 11, 23]);
    for request in request_stream(tenants, rounds, ops_per_request) {
        server.submit(request);
    }
    let outcomes = server.run();

    // Gate 1: one outcome per submitted request, batch never aborted.
    assert_eq!(
        outcomes.len(),
        reference_outputs.len(),
        "chaos run must yield one outcome per submitted request"
    );
    let mut last_flaky_outcome: std::collections::BTreeMap<TenantId, bool> =
        std::collections::BTreeMap::new();
    for (outcome, reference) in outcomes.iter().zip(&reference_outputs) {
        let tenant = outcome.tenant();
        match kinds.get(&tenant).copied() {
            // Gate 2: tenants the plan left healthy (or merely slowed, with no deadline
            // configured) complete with outputs bitwise equal to the fault-free run, even
            // with chaos evictions landing mid-stream.
            None | Some("slow") => {
                let served = outcome
                    .completed()
                    .expect("healthy/slow tenants complete under chaos");
                assert_eq!(
                    served.output.c0(),
                    reference.c0(),
                    "chaos changed a healthy tenant's output"
                );
                assert_eq!(served.output.c1(), reference.c1());
            }
            // Gate 3: corrupt blobs surface as typed permanent errors on every request.
            Some("corrupt") => {
                let error = outcome.error().expect("corrupt tenant requests fail");
                assert!(
                    matches!(error.fault, ServeFault::CorruptKey { .. }),
                    "expected CorruptKey, got {:?}",
                    error.fault
                );
                assert!(!error.is_transient());
            }
            // Gate 4 (checked after the loop): flaky tenants' failures are transient
            // KeyFetch errors and their final request completes bitwise-identically.
            Some(kind) => {
                debug_assert_eq!(kind, "flaky");
                match outcome {
                    RequestOutcome::Completed(served) => {
                        assert_eq!(served.output.c0(), reference.c0());
                        assert_eq!(served.output.c1(), reference.c1());
                        last_flaky_outcome.insert(tenant, true);
                    }
                    RequestOutcome::Failed(error) => {
                        assert!(
                            matches!(error.fault, ServeFault::KeyFetch { .. }),
                            "expected transient KeyFetch, got {:?}",
                            error.fault
                        );
                        assert!(error.is_transient());
                        last_flaky_outcome.insert(tenant, false);
                    }
                    RequestOutcome::Shed { .. } => panic!("unbounded queue never sheds"),
                }
            }
        }
    }
    let flaky_tenants = kinds.values().filter(|k| **k == "flaky").count();
    let recovered = last_flaky_outcome.values().filter(|ok| **ok).count();
    assert_eq!(
        recovered, flaky_tenants,
        "every fail-then-recover tenant must complete its final request"
    );

    let counters = server.counters();
    let stats = server.cache_stats();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"source\": \"fab-bench serving bin chaos gate (PR 8)\","
    );
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"fault_rate\": {fault_rate},");
    let _ = writeln!(
        out,
        "  \"tenants\": {}, \"requests\": {},",
        tenants.len(),
        outcomes.len()
    );
    out.push_str("  \"faulted\": [");
    for (i, (tenant, kind)) in kinds.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"tenant\": {}, \"kind\": \"{kind}\"}}",
            if i == 0 { "" } else { ", " },
            tenant.0
        );
    }
    out.push_str("],\n");
    let _ = writeln!(
        out,
        "  \"outcomes\": {{\"completed\": {}, \"failed\": {}, \"shed\": {}, \"prefetch_failures\": {}}},",
        counters.completed, counters.failed, counters.shed, counters.prefetch_failures
    );
    let _ = writeln!(
        out,
        "  \"recovery\": {{\"flaky_tenants\": {flaky_tenants}, \"recovered\": {recovered}}},"
    );
    let _ = writeln!(
        out,
        "  \"cache\": {{\"transient_retries\": {}, \"backoff_units\": {}, \"corrupt_fetches\": {}, \"rollbacks\": {}, \"chaos_evictions\": {}, \"quarantined\": {}}},",
        stats.transient_retries,
        stats.backoff_units,
        stats.corrupt_fetches,
        stats.rollbacks,
        stats.chaos_evictions,
        server.cache().quarantined_count()
    );
    let _ = writeln!(
        out,
        "  \"gates\": {{\"per_request_outcomes\": true, \"healthy_outputs_bitwise_equal\": true, \"corrupt_requests_typed\": true, \"flaky_tenants_recovered\": true}}"
    );
    out.push_str("}\n");
    out
}

fn assert_bitwise_equal_outputs(reference: &[Ciphertext], other: &ConfigResult) {
    assert_eq!(reference.len(), other.outputs.len());
    for (r, o) in reference.iter().zip(&other.outputs) {
        assert_eq!(
            r.c0(),
            o.c0(),
            "output diverged at budget {} (prefetch {}) — cache state changed a ciphertext",
            other.budget_bytes,
            other.prefetch
        );
        assert_eq!(
            r.c1(),
            o.c1(),
            "c1 diverged at budget {}",
            other.budget_bytes
        );
    }
}

fn render_json(
    mode: &str,
    cores: usize,
    untrusted_scaling: bool,
    params: &CkksParams,
    per_set_bytes: usize,
    results: &[ConfigResult],
    pricing: &Pricing,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"fab-bench serving bin (PR 6)\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"cores_available\": {cores},");
    let _ = writeln!(out, "  \"untrusted_scaling\": {untrusted_scaling},");
    let _ = writeln!(
        out,
        "  \"params\": {{\"log_n\": {}, \"max_level\": {}, \"dnum\": {}}},",
        params.degree().trailing_zeros(),
        params.max_level,
        params.dnum
    );
    let _ = writeln!(out, "  \"key_set_bytes_per_tenant\": {per_set_bytes},");
    let _ = writeln!(
        out,
        "  \"bitwise_gate\": \"every configuration's outputs asserted bitwise equal to the full-budget reference before reporting\","
    );
    out.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"tenants\": {}, \"budget_bytes\": {}, \"budget_fraction\": {:.2}, \"prefetch\": {}, \"requests\": {}",
            r.tenants, r.budget_bytes, r.budget_fraction, r.prefetch, r.requests
        );
        let _ = write!(
            out,
            ", \"hit_rate\": {:.3}, \"hits\": {}, \"misses\": {}, \"prefetch_hits\": {}, \"evictions\": {}, \"uncached_fetches\": {}, \"key_bytes_fetched\": {}",
            r.stats.hit_rate(),
            r.stats.hits,
            r.stats.misses,
            r.stats.prefetch_hits,
            r.stats.evictions,
            r.stats.uncached_fetches,
            r.stats.bytes_fetched
        );
        let _ = write!(
            out,
            ", \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"mean_us\": {:.0}",
            r.p50_us, r.p95_us, r.p99_us, r.mean_us
        );
        out.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"pricing\": {{");
    let _ = writeln!(
        out,
        "    \"note\": \"aggregated planned trace of the largest tenant mix's request stream, priced on the accelerator model\","
    );
    let _ = writeln!(out, "    \"ops\": {},", pricing.ops);
    let _ = writeln!(out, "    \"fab1_ms\": {:.3},", pricing.fab1_ms);
    let _ = writeln!(
        out,
        "    \"fab2_ms\": {:.3}, \"fab2_speedup\": {:.2}",
        pricing.fab2_ms, pricing.fab2_speedup
    );
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "target/BENCH_serving_quick.json".to_string()
            } else {
                "BENCH_pr6.json".to_string()
            }
        });
    let cores = fab_bench::available_cores();
    let untrusted_scaling = fab_bench::warn_untrusted_scaling("Latency percentiles");

    let (log_n, max_level, tenant_counts, rounds, ops_per_request): (
        usize,
        usize,
        Vec<usize>,
        u64,
        usize,
    ) = if quick {
        (8, 2, vec![2], 2, 5)
    } else {
        (10, 3, vec![1, 2, 4], 3, 6)
    };
    let params = CkksParams::builder()
        .log_n(log_n)
        .scale_bits(40)
        .first_prime_bits(50)
        .max_level(max_level)
        .dnum(2)
        .secret_hamming_weight(Some(32))
        .build()
        .expect("serving parameters");
    // relin + one key per distinct rotation + conjugation.
    let per_set_bytes = key_set_bytes(&params, ROTATIONS.len() + 1);
    let ctx = CkksContext::new_arc(params.clone()).expect("context");
    let max_tenants = *tenant_counts.iter().max().expect("non-empty sweep");
    let all_tenants = make_tenants(&ctx, max_tenants);

    let mut results = Vec::new();
    for &count in &tenant_counts {
        let tenants = &all_tenants[..count];
        let total_bytes = count * per_set_bytes;
        let mut reference_outputs: Option<Vec<Ciphertext>> = None;
        // Full budget first: its outputs are the bitwise reference for the starved configs.
        for &fraction in &[1.0f64, 0.5, 0.25] {
            let budget = ((total_bytes as f64) * fraction) as usize;
            for prefetch in [true, false] {
                let result = run_config(
                    &ctx,
                    tenants,
                    budget,
                    fraction,
                    prefetch,
                    rounds,
                    ops_per_request,
                );
                match &reference_outputs {
                    None => reference_outputs = Some(result.outputs.clone()),
                    Some(reference) => assert_bitwise_equal_outputs(reference, &result),
                }
                results.push(result);
            }
        }
    }

    // Hit-rate gate on the fixed tenant mix: at the full budget with prefetch on, only each
    // key's first-ever touch may miss, so the demand hit rate must clear the floor.
    for r in results
        .iter()
        .filter(|r| r.prefetch && (r.budget_fraction - 1.0).abs() < f64::EPSILON)
    {
        assert!(
            r.stats.hit_rate() >= HIT_RATE_FLOOR,
            "hit rate {:.3} at full budget ({} tenants) under floor {HIT_RATE_FLOOR}",
            r.stats.hit_rate(),
            r.tenants
        );
        assert_eq!(
            r.stats.uncached_fetches, 0,
            "full budget must admit every key"
        );
    }
    // Starved configs must actually exercise eviction/admission, or the sweep says nothing.
    assert!(
        results
            .iter()
            .filter(|r| r.budget_fraction < 0.3 && r.tenants > 1)
            .all(|r| r.stats.evictions > 0 || r.stats.uncached_fetches > 0),
        "the smallest budget never evicted: the sweep is not exercising the cache"
    );

    let pricing = price_stream(&ctx, &all_tenants[..max_tenants], rounds, ops_per_request);

    // The chaos gate replays the largest tenant mix under a seeded fault plan and asserts
    // the fault-isolation contract; its rows go to a separate PR 8 report.
    let chaos_json = chaos_gate(
        &ctx,
        &all_tenants[..max_tenants],
        rounds,
        ops_per_request,
        per_set_bytes,
        if quick { "quick" } else { "full" },
    );
    let chaos_path = if quick {
        "target/BENCH_chaos_quick.json"
    } else {
        "BENCH_pr8.json"
    };

    let json = render_json(
        if quick { "quick" } else { "full" },
        cores,
        untrusted_scaling,
        &params,
        per_set_bytes,
        &results,
        &pricing,
    );
    print!("{json}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
    if let Some(parent) = std::path::Path::new(chaos_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create chaos output directory");
        }
    }
    std::fs::write(chaos_path, &chaos_json).expect("write chaos JSON");
    eprintln!("wrote {chaos_path}");
}
