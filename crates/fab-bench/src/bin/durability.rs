//! Durability benchmark: prices the fsync discipline of the segmented journal and gates
//! the simulated-disk crash contract, writing machine-readable rows to `BENCH_pr10.json`.
//!
//! Three gates run before any number is reported:
//!
//! * **SimDisk crash sweep** — the journaled serving run is killed at *every* disk-syscall
//!   boundary; for multiple seeded power-loss surfaces (torn, dropped, reordered unsynced
//!   writes), [`FabServer::recover_from_store`] must replay a bitwise-identical prefix of
//!   the uninterrupted run with zero duplicate executions.
//! * **Compaction equivalence** — a checkpoint-truncated journal recovers to exactly the
//!   same state as the uncompacted one.
//! * **No acknowledged-loss under `SyncPolicy::Always`** — every surface recovers every
//!   acknowledged outcome.
//!
//! The rows then price what the discipline costs on the real filesystem:
//!
//! * `sync_policy_cost` — wall time and fsync counts of the same journaled workload on a
//!   [`fab_store::FileBackend`] under `Always` / `EveryN` / `IntervalUs`, with the fsync
//!   count cross-checked against a deterministic [`SimDisk`] twin of the run.
//! * `recovery_latency` — [`DurableJournal::recover`] wall time against the uncompacted
//!   segment chain and against the compacted base it leaves behind (recovery re-compacts,
//!   so the second recovery *is* the post-compaction cost), with bytes on disk for both.
//!
//! Wall-clock numbers on a shared runner carry scheduler noise;
//! [`fab_bench::warn_untrusted_scaling`] flags the file once at the top level.
//!
//! Usage: `cargo run --release -p fab-bench --bin durability [-- --quick] [--out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{
    key_set_bytes, Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys,
    KeyGenerator, RelinearizationKey, SecretKey,
};
use fab_serve::{
    DurableJournal, FabServer, FakeClock, Program, Request, RequestOutcome, ServeFault, ServeOp,
    ServerConfig, TenantId,
};
use fab_store::{FileBackend, SharedDisk, StorageBackend, SyncPolicy};

const ROTATIONS: [usize; 2] = [1, 3];
const ROTATE_AFTER: u64 = 6;

struct Tenant {
    rlk: RelinearizationKey,
    keys: GaloisKeys,
    input: Ciphertext,
}

struct Fixture {
    ctx: Arc<CkksContext>,
    tenants: Vec<Tenant>,
    config: ServerConfig,
    rounds: u64,
    program_len: usize,
}

fn make_fixture(quick: bool) -> Fixture {
    let (log_n, max_level, tenant_count, rounds, program_len) = if quick {
        (5, 2, 2, 2, 2)
    } else {
        (8, 3, 3, 3, 4)
    };
    let params = CkksParams::builder()
        .log_n(log_n)
        .scale_bits(40)
        .first_prime_bits(50)
        .max_level(max_level)
        .dnum(1)
        .secret_hamming_weight(Some(16))
        .build()
        .expect("valid parameters");
    let ctx = CkksContext::new_arc(params).expect("context");
    let tenants: Vec<Tenant> = (0..tenant_count)
        .map(|t| {
            let mut rng = ChaCha20Rng::seed_from_u64(0xD0_0B + t as u64);
            let sk = SecretKey::generate(&ctx, &mut rng);
            let keygen = KeyGenerator::new(ctx.clone(), sk);
            let pk = keygen.public_key(&mut rng);
            let rlk = keygen.relinearization_key(&mut rng);
            let keys = keygen
                .galois_keys(&ROTATIONS, true, &mut rng)
                .expect("galois keys");
            let encoder = Encoder::new(ctx.clone());
            let encryptor = Encryptor::new(ctx.clone(), pk);
            let scale = ctx.params().default_scale();
            let values: Vec<f64> = (0..ctx.slot_count())
                .map(|i| ((i + t) as f64 * 0.19).sin())
                .collect();
            let pt = encoder
                .encode_real(&values, scale, ctx.params().max_level)
                .expect("encode");
            let input = encryptor.encrypt(&pt, &mut rng).expect("encrypt");
            Tenant { rlk, keys, input }
        })
        .collect();
    let config = ServerConfig {
        cache_budget_bytes: tenant_count * key_set_bytes(ctx.params(), ROTATIONS.len() + 1),
        prefetch: true,
        lookahead: 8,
        ..ServerConfig::default()
    };
    Fixture {
        ctx,
        tenants,
        config,
        rounds,
        program_len,
    }
}

fn make_server(fixture: &Fixture) -> FabServer {
    let mut server = FabServer::new(Evaluator::new(fixture.ctx.clone()), fixture.config);
    server.use_fake_clock(Arc::new(FakeClock::with_step(1)));
    for (t, tenant) in fixture.tenants.iter().enumerate() {
        server.register_tenant(TenantId(t as u32), &tenant.rlk, &tenant.keys);
    }
    server
}

fn submit_stream(server: &mut FabServer, fixture: &Fixture) {
    for round in 0..fixture.rounds {
        for (t, tenant) in fixture.tenants.iter().enumerate() {
            let mut ops = vec![ServeOp::Rotate(1)];
            ops.extend(
                Program::random(73 + round, fixture.program_len, &ROTATIONS)
                    .ops()
                    .iter()
                    .copied(),
            );
            server.submit(Request {
                tenant: TenantId(t as u32),
                program: Program::new(ops),
                input: tenant.input.clone(),
            });
        }
    }
}

fn assert_equivalent(label: &str, got: &RequestOutcome, want: &RequestOutcome) {
    assert_eq!(got.request(), want.request(), "id diverged: {label}");
    assert_eq!(got.tenant(), want.tenant(), "tenant diverged: {label}");
    match (got, want) {
        (RequestOutcome::Completed(g), RequestOutcome::Completed(w)) => {
            assert_eq!(g.output.c0(), w.output.c0(), "c0 diverged: {label}");
            assert_eq!(g.output.c1(), w.output.c1(), "c1 diverged: {label}");
        }
        (RequestOutcome::Failed(g), RequestOutcome::Failed(w)) => match &g.fault {
            ServeFault::Replayed { class, description } => {
                assert_eq!(*class, w.fault.class(), "class diverged: {label}");
                assert_eq!(*description, w.fault.to_string(), "{label}");
            }
            fault => assert_eq!(fault, &w.fault, "fault diverged: {label}"),
        },
        (g, w) => panic!("outcome shape diverged: {label}: {g:?} vs {w:?}"),
    }
}

/// Journaled workload on `disk`; `None` when the armed crash killed journal creation.
fn run_on_disk(fixture: &Fixture, disk: &SharedDisk, policy: SyncPolicy) -> Option<FabServer> {
    let mut server = make_server(fixture);
    let journal = DurableJournal::create(
        Box::new(disk.clone()),
        fixture.ctx.clone(),
        policy,
        ROTATE_AFTER,
    )
    .ok()?;
    server.attach_durable_journal(journal);
    submit_stream(&mut server, fixture);
    let _outcomes = server.run();
    Some(server)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "target/BENCH_durability_quick.json".to_string()
            } else {
                "BENCH_pr10.json".to_string()
            }
        });
    let cores = fab_bench::available_cores();
    let untrusted_scaling = fab_bench::warn_untrusted_scaling("Durability latencies");
    let fixture = make_fixture(quick);
    let policy = SyncPolicy::Always;

    // ---- Reference run + gate 1: the SimDisk crash sweep. -------------------------------
    let ref_disk = SharedDisk::new();
    let mut ref_server = run_on_disk(&fixture, &ref_disk, policy).expect("unarmed disk");
    drop(ref_server.take_durable_journal());
    let reference = {
        let mut replay = make_server(&fixture);
        let report = replay
            .recover_from_store(Box::new(ref_disk.snapshot()), policy, ROTATE_AFTER)
            .expect("healthy disk recovers");
        assert_eq!(report.torn_bytes, 0, "clean shutdown tears nothing");
        assert!(report.readmitted.is_empty(), "everything settled");
        report.settled
    };
    assert!(
        reference.iter().all(|o| o.completed().is_some()),
        "the durability fixture is fault-free; every request completes"
    );
    let total_ops = ref_disk.op_count();
    let segments = ref_disk.snapshot().list("seg-").len();

    let mut recover_sweep_us: Vec<u64> = Vec::new();
    let seeds: &[u64] = if quick { &[3] } else { &[3, 11] };
    for at in 0..total_ops {
        let disk = SharedDisk::new();
        disk.arm_crash(at);
        if let Some(server) = run_on_disk(&fixture, &disk, policy) {
            assert!(server.has_crashed(), "armed op {at} never fired");
        }
        for &seed in seeds {
            let label = format!("crash at op {at} of {total_ops}, seed {seed}");
            let (surface, _) = disk.crash_surface(seed);
            let mut recovered = make_server(&fixture);
            let start = Instant::now();
            let report = recovered
                .recover_from_store(Box::new(surface), policy, ROTATE_AFTER)
                .unwrap_or_else(|e| panic!("{label}: crash damage is never corruption: {e}"));
            recover_sweep_us.push(start.elapsed().as_micros() as u64);
            let settled_completed = report
                .settled
                .iter()
                .filter(|o| o.completed().is_some())
                .count() as u64;
            let mut outcomes = report.settled;
            outcomes.extend(recovered.run());
            outcomes.sort_by_key(RequestOutcome::request);
            assert!(
                outcomes.len() <= reference.len(),
                "{label}: fabricated work"
            );
            for (got, want) in outcomes.iter().zip(&reference) {
                assert_eq!(got.request(), want.request(), "{label}: not a prefix");
                assert_equivalent(&label, got, want);
            }
            let completed_total =
                outcomes.iter().filter(|o| o.completed().is_some()).count() as u64;
            assert_eq!(
                recovered.executions(),
                completed_total - settled_completed,
                "{label}: a journaled completion was re-executed"
            );
        }
    }
    recover_sweep_us.sort_unstable();

    // ---- Gate 2: compaction equivalence. ------------------------------------------------
    {
        let disk = SharedDisk::new();
        let mut server = run_on_disk(&fixture, &disk, policy).expect("unarmed disk");
        let uncompacted = disk.snapshot();
        server.compact_journal().expect("live compaction");
        let compacted = disk.snapshot();
        let mut a = make_server(&fixture);
        let ra = a
            .recover_from_store(Box::new(uncompacted), policy, ROTATE_AFTER)
            .expect("uncompacted recovers");
        let mut b = make_server(&fixture);
        let rb = b
            .recover_from_store(Box::new(compacted), policy, ROTATE_AFTER)
            .expect("compacted recovers");
        assert_eq!(ra.settled.len(), rb.settled.len(), "compaction lost state");
        for (got, want) in rb.settled.iter().zip(&ra.settled) {
            assert_equivalent("compacted vs uncompacted", got, want);
        }
        assert_eq!(ra.readmitted, rb.readmitted);
    }

    // ---- Sync-policy cost on the real filesystem. ---------------------------------------
    let policies = [
        SyncPolicy::Always,
        SyncPolicy::EveryN(4),
        SyncPolicy::EveryN(16),
        SyncPolicy::IntervalUs(50),
    ];
    struct PolicyRow {
        label: String,
        wall_us: u64,
        syncs: u64,
        dir_syncs: u64,
        appends: u64,
        bytes: u64,
        segments: usize,
    }
    let scratch = std::env::temp_dir().join(format!("fab-bench-durability-{}", std::process::id()));
    let mut policy_rows: Vec<PolicyRow> = Vec::new();
    for policy in policies {
        // Deterministic twin on the simulated disk: fsync counts are a property of the
        // op sequence, not of the backend, so the twin prices them exactly.
        let twin = SharedDisk::new();
        let mut twin_server = run_on_disk(&fixture, &twin, policy).expect("unarmed disk");
        let twin_stats = twin.stats();
        let bytes = twin_server
            .durable_journal_mut()
            .expect("attached")
            .bytes_on_disk()
            .expect("readable");
        let twin_segments = twin.snapshot().list("seg-").len();

        let dir = scratch.join(policy.label());
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let backend = FileBackend::open(&dir).expect("file backend");
        let mut server = make_server(&fixture);
        let start = Instant::now();
        let journal =
            DurableJournal::create(Box::new(backend), fixture.ctx.clone(), policy, ROTATE_AFTER)
                .expect("file-backed journal");
        server.attach_durable_journal(journal);
        submit_stream(&mut server, &fixture);
        let outcomes = server.run();
        let wall_us = start.elapsed().as_micros() as u64;
        assert_eq!(outcomes.len(), reference.len());

        policy_rows.push(PolicyRow {
            label: policy.label(),
            wall_us,
            syncs: twin_stats.syncs,
            dir_syncs: twin_stats.dir_syncs,
            appends: twin_stats.appends,
            bytes,
            segments: twin_segments,
        });
    }

    // ---- Recovery latency: uncompacted segment chain vs compacted base. -----------------
    // Recovery rewrites the store compacted, so recovering the same directory twice prices
    // both shapes of the journal on the real filesystem.
    let recover_dir = scratch.join("recover");
    std::fs::create_dir_all(&recover_dir).expect("scratch dir");
    {
        let backend = FileBackend::open(&recover_dir).expect("file backend");
        let mut server = make_server(&fixture);
        let journal =
            DurableJournal::create(Box::new(backend), fixture.ctx.clone(), policy, ROTATE_AFTER)
                .expect("file-backed journal");
        server.attach_durable_journal(journal);
        submit_stream(&mut server, &fixture);
        let _ = server.run();
    }
    let dir_shape = |dir: &std::path::Path| -> (u64, usize) {
        let entries: Vec<_> = std::fs::read_dir(dir)
            .expect("readable dir")
            .filter_map(|e| e.ok())
            .collect();
        let bytes = entries
            .iter()
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        (bytes, entries.len())
    };
    let (bytes_uncompacted, files_uncompacted) = dir_shape(&recover_dir);
    let recover = |label: &str| -> u64 {
        let backend = FileBackend::open(&recover_dir).expect("file backend");
        let mut server = make_server(&fixture);
        let start = Instant::now();
        let report = server
            .recover_from_store(Box::new(backend), policy, ROTATE_AFTER)
            .unwrap_or_else(|e| panic!("{label}: healthy directory recovers: {e}"));
        let us = start.elapsed().as_micros() as u64;
        assert_eq!(report.settled.len(), reference.len(), "{label}: lost state");
        drop(server.take_durable_journal());
        us
    };
    let recover_uncompacted_us = recover("uncompacted");
    let (bytes_compacted, files_compacted) = dir_shape(&recover_dir);
    let recover_compacted_us = recover("compacted");
    assert!(
        bytes_compacted < bytes_uncompacted,
        "compaction reclaims settled inputs: {bytes_compacted} vs {bytes_uncompacted}"
    );
    std::fs::remove_dir_all(&scratch).ok();

    // ---- Report. ------------------------------------------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"fab-bench durability bin (PR 10)\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"cores_available\": {cores},");
    let _ = writeln!(out, "  \"untrusted_scaling\": {untrusted_scaling},");
    let _ = writeln!(
        out,
        "  \"params\": {{\"log_n\": {}, \"max_level\": {}, \"dnum\": {}}},",
        fixture.ctx.params().degree().trailing_zeros(),
        fixture.ctx.params().max_level,
        fixture.ctx.params().dnum
    );
    let _ = writeln!(
        out,
        "  \"fixture\": {{\"tenants\": {}, \"requests\": {}, \"disk_ops\": {total_ops}, \"segments\": {segments}, \"rotate_after_records\": {ROTATE_AFTER}, \"surface_seeds\": {}}},",
        fixture.tenants.len(),
        reference.len(),
        seeds.len()
    );
    let _ = writeln!(
        out,
        "  \"gates\": {{\"bitwise_identical_prefix\": true, \"zero_duplicate_executions\": true, \"crash_damage_never_corruption\": true, \"compacted_equals_uncompacted\": true}},"
    );
    let _ = writeln!(
        out,
        "  \"simdisk_sweep\": {{\"kill_sites\": {total_ops}, \"recoveries\": {}, \"recover_us\": {{\"min\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}}},",
        recover_sweep_us.len(),
        recover_sweep_us[0],
        percentile(&recover_sweep_us, 0.50),
        percentile(&recover_sweep_us, 0.95),
        recover_sweep_us[recover_sweep_us.len() - 1]
    );
    out.push_str("  \"sync_policy_cost\": [\n");
    let row_count = policy_rows.len();
    for (i, row) in policy_rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"policy\": \"{}\", \"wall_us\": {}, \"fsyncs\": {}, \"dir_fsyncs\": {}, \"appends\": {}, \"journal_bytes\": {}, \"segments\": {}",
            row.label, row.wall_us, row.syncs, row.dir_syncs, row.appends, row.bytes, row.segments
        );
        out.push_str(if i + 1 == row_count { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"recovery_latency\": {{\"uncompacted\": {{\"bytes\": {bytes_uncompacted}, \"files\": {files_uncompacted}, \"recover_us\": {recover_uncompacted_us}}}, \"compacted\": {{\"bytes\": {bytes_compacted}, \"files\": {files_compacted}, \"recover_us\": {recover_compacted_us}}}}}"
    );
    out.push_str("}\n");

    print!("{out}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &out).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
