//! Kernel performance trajectory: times the NTT, key-switch, dual-form multiply, fused
//! multiply-rescale and linear-transform kernels and writes a machine-readable
//! `BENCH_pr5.json` so the repo carries a committed perf record.
//!
//! Every optimised row is timed against its **retained reference path** — `key_switch`
//! against the PR 3 per-digit eager algorithm (`Evaluator::key_switch_reference`),
//! `multiply_dual` against the PR 4 coefficient-resident pipeline
//! (`Evaluator::multiply_reference`), `linear_transform_bsgs` against the PR 4 per-diagonal
//! BSGS path (`LinearTransform::apply_bsgs_reference`) — so no speedup column ever
//! degenerates into a kernel measured against itself, and each pair is asserted **bitwise
//! equal** before any timing. Alongside the timings, the observed NTT transform counts (via
//! `fab_rns::metering`) are recorded and asserted equal to the closed-form formulas of
//! `fab_ckks::accounting` (formula + assertion before optimisation claim — the PR 4 rule).
//!
//! Thread-sweep rows are only meaningful on a multi-core machine: when the container reports
//! a single core, the JSON carries a single top-level `"untrusted_scaling": true` field and
//! one loud warning is printed (via [`fab_bench::warn_untrusted_scaling`], shared with the
//! serving bench), so a BENCH file recorded on a 1-core box cannot be misread as a scaling
//! result.
//!
//! Modes:
//!
//! * default — full-size kernels (forward/inverse NTT at the paper's `N = 2^16`, key switch,
//!   dual-form multiply, fused multiply-rescale and eval-resident BSGS linear transform at
//!   the testing parameter set) written to `BENCH_pr5.json`; enforces the lazy-NTT,
//!   key-switch, multiply and BSGS speedup floors;
//! * `--quick` — tiny kernels for the CI smoke run: asserts all the bitwise gates, the
//!   thread-determinism gate, that the recorded NTT counts equal the closed-form formulas
//!   (including the dual-form multiply delta and the eval-resident BSGS warm/steady pair),
//!   and that the key-switch / multiply / BSGS speedups stay above conservative floors
//!   (catastrophic-regression guards; microsecond-scale timings are too flaky for tight
//!   gates); writes to `target/BENCH_quick.json`. Any violated invariant panics, failing CI
//!   loudly.
//!
//! Usage: `cargo run --release -p fab-bench --bin kernels [-- --quick] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use fab_ckks::accounting;
use fab_ckks::{
    CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, LinearTransform,
    SecretKey,
};
use fab_math::{Complex64, Modulus, NttTable};
use fab_rns::metering;

/// Speedup floor for the lazy key switch vs the PR 3 reference: tight in the full run
/// (stable millisecond-scale samples), loose in `--quick` (CI smoke, microsecond-scale).
const KEY_SWITCH_FLOOR_FULL: f64 = 1.2;
const KEY_SWITCH_FLOOR_QUICK: f64 = 0.7;
/// Speedup floor for the dual-form multiply vs the PR 4 coefficient-resident reference:
/// the seam saves ~15% of the transforms, so "no regression" is the honest full-run gate.
const MULTIPLY_FLOOR_FULL: f64 = 1.0;
const MULTIPLY_FLOOR_QUICK: f64 = 0.7;
/// Speedup floor for the eval-resident BSGS apply vs the PR 4 per-diagonal path: the stage
/// drops one plaintext round-trip per diagonal, a conservative floor well under the
/// expected steady-state gain.
const BSGS_FLOOR_FULL: f64 = 1.05;
const BSGS_FLOOR_QUICK: f64 = 0.7;

/// One measured kernel configuration.
struct Record {
    kernel: &'static str,
    n: usize,
    limbs: usize,
    threads: usize,
    ns_per_op: f64,
    /// Reference-implementation time, where a baseline exists.
    baseline_ns_per_op: Option<f64>,
    /// `baseline / measured`.
    speedup: Option<f64>,
    /// Observed single-limb NTT transforms per op (forward, inverse), where metered.
    ntt_counts: Option<(u64, u64)>,
    note: &'static str,
}

fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Flake guard shared by every speedup floor gate: while the observed speedup sits under
/// `floor`, re-sample both paths (up to two extra rounds — best of three overall) before
/// declaring a regression, so one scheduler blip on a microsecond-scale quick sample cannot
/// fail CI spuriously. The recorded JSON rows always keep the first, honest sample; only the
/// gate uses the best.
fn resample_speedup_floor(
    first: f64,
    floor: f64,
    mut baseline_ns: impl FnMut() -> f64,
    mut measured_ns: impl FnMut() -> f64,
) -> f64 {
    let mut best = first;
    for _ in 0..2 {
        if best >= floor {
            break;
        }
        best = best.max(baseline_ns() / measured_ns());
    }
    best
}

fn random_residues(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Forward/inverse lazy-reduction NTT vs the eager reference, single-threaded.
fn ntt_records(log_n: usize, iters: usize, records: &mut Vec<Record>) {
    let n = 1usize << log_n;
    let q = fab_math::generate_ntt_prime(54, n, 0).expect("54-bit NTT prime");
    let table = NttTable::new(n, Modulus::new(q).expect("modulus")).expect("NTT table");
    let poly = random_residues(n, q, log_n as u64);

    // Correctness gate before timing: lazy must equal eager bit for bit.
    let mut lazy = poly.clone();
    let mut eager = poly.clone();
    table.forward(&mut lazy);
    table.forward_reference(&mut eager);
    assert_eq!(lazy, eager, "lazy forward NTT diverged from the reference");
    table.inverse(&mut lazy);
    table.inverse_reference(&mut eager);
    assert_eq!(lazy, eager, "lazy inverse NTT diverged from the reference");
    assert_eq!(lazy, poly, "NTT roundtrip is not the identity");

    let mut data = poly.clone();
    let fwd_lazy = time_ns(iters, || table.forward(&mut data));
    let fwd_eager = time_ns(iters, || table.forward_reference(&mut data));
    let inv_lazy = time_ns(iters, || table.inverse(&mut data));
    let inv_eager = time_ns(iters, || table.inverse_reference(&mut data));
    std::hint::black_box(&data);

    records.push(Record {
        kernel: "ntt_forward",
        n,
        limbs: 1,
        threads: 1,
        ns_per_op: fwd_lazy,
        baseline_ns_per_op: Some(fwd_eager),
        speedup: Some(fwd_eager / fwd_lazy),
        ntt_counts: Some((1, 0)),
        note: "lazy-reduction Harvey vs eager seed reference, 54-bit prime",
    });
    records.push(Record {
        kernel: "ntt_inverse",
        n,
        limbs: 1,
        threads: 1,
        ns_per_op: inv_lazy,
        baseline_ns_per_op: Some(inv_eager),
        speedup: Some(inv_eager / inv_lazy),
        ntt_counts: Some((0, 1)),
        note: "lazy + fused N^-1 vs eager seed reference, 54-bit prime",
    });
}

/// Lazy u128 key switch vs the PR 3 per-digit eager reference, swept over worker counts.
/// Returns the single-thread speedup for the floor gate — re-measured up to twice if the
/// first sample lands under `floor`, so one scheduler blip on a microsecond-scale quick
/// sample cannot fail CI spuriously (the recorded rows keep the first, honest sample).
fn key_switch_records(
    params: CkksParams,
    iters: usize,
    floor: f64,
    records: &mut Vec<Record>,
) -> f64 {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(42);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let rlk = keygen.relinearization_key(&mut rng);
    let evaluator = Evaluator::new(ctx.clone());
    let level = ctx.params().max_level;
    let basis = ctx.basis_at_level(level).expect("basis");
    let d = fab_ckks::sampling::sample_uniform(&mut rng, &basis);

    let cores = fab_bench::available_cores();
    let mut sweep = vec![1usize, 2];
    if cores > 2 {
        sweep.push(cores);
    }
    sweep.dedup();

    fab_par::set_threads(1);
    // Bitwise gate: the lazy pipeline must reproduce the PR 3 reference exactly.
    let reference = evaluator
        .key_switch_reference(&d, &rlk.key, level)
        .expect("reference key switch");
    let lazy = evaluator
        .key_switch(&d, &rlk.key, level)
        .expect("lazy key switch");
    assert_eq!(
        lazy, reference,
        "u128 lazy key switch diverged from the per-digit eager reference"
    );

    // NTT-count gate: the observed transforms must equal the closed-form minimum.
    let (limbs, special, alpha) = (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    );
    let before = metering::counts();
    std::hint::black_box(
        evaluator
            .key_switch(&d, &rlk.key, level)
            .expect("key switch"),
    );
    let observed = metering::counts().since(&before);
    let expected = accounting::key_switch(limbs, special, alpha);
    assert_eq!(
        observed, expected,
        "key switch performed {observed:?} transforms, closed-form minimum is {expected:?}"
    );

    // The timed baseline: the PR 3 algorithm, single-threaded.
    let baseline_ns = time_ns(iters, || {
        std::hint::black_box(
            evaluator
                .key_switch_reference(&d, &rlk.key, level)
                .expect("reference key switch"),
        );
    });
    records.push(Record {
        kernel: "key_switch_reference",
        n: ctx.degree(),
        limbs: level + 1,
        threads: 1,
        ns_per_op: baseline_ns,
        baseline_ns_per_op: None,
        speedup: None,
        ntt_counts: Some((expected.forward, expected.inverse)),
        note: "PR 3 algorithm: per-digit sequential ModUp->NTT->eager KSKIP->ModDown",
    });

    let mut single_thread_speedup = 0.0;
    for &threads in &sweep {
        fab_par::set_threads(threads);
        // Determinism gate: digit/limb partitioning must make thread count invisible.
        let check = evaluator
            .key_switch(&d, &rlk.key, level)
            .expect("key switch");
        assert_eq!(
            check, reference,
            "key switch output changed at {threads} threads"
        );
        let ns = time_ns(iters, || {
            std::hint::black_box(
                evaluator
                    .key_switch(&d, &rlk.key, level)
                    .expect("key switch"),
            );
        });
        if threads == 1 {
            single_thread_speedup = baseline_ns / ns;
        }
        records.push(Record {
            kernel: "key_switch",
            n: ctx.degree(),
            limbs: level + 1,
            threads,
            ns_per_op: ns,
            baseline_ns_per_op: Some(baseline_ns),
            speedup: Some(baseline_ns / ns),
            ntt_counts: Some((expected.forward, expected.inverse)),
            note: "u128 lazy KSKIP, batched digit-parallel ModUp+NTT, vs PR 3 reference",
        });
    }
    fab_par::set_threads(1);
    resample_speedup_floor(
        single_thread_speedup,
        floor,
        || {
            time_ns(iters, || {
                std::hint::black_box(
                    evaluator
                        .key_switch_reference(&d, &rlk.key, level)
                        .expect("reference key switch"),
                );
            })
        },
        || {
            time_ns(iters, || {
                std::hint::black_box(
                    evaluator
                        .key_switch(&d, &rlk.key, level)
                        .expect("key switch"),
                );
            })
        },
    )
}

/// Dual-form multiply (eval-resident tensor, dual-form key switch, eval-domain `P·d`
/// absorption) vs the retained PR 4 coefficient-resident pipeline
/// (`Evaluator::multiply_reference`). Bitwise equality and the exact transform-count deltas
/// (`ℓ+1` fewer forwards, `2·(ℓ+1)` fewer inverses) are asserted before timing; returns the
/// measured speedup for the floor gate (best-of-three resampling like the key switch).
fn multiply_records(
    params: CkksParams,
    iters: usize,
    floor: f64,
    records: &mut Vec<Record>,
) -> f64 {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(909);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let level = ctx.params().max_level;
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.11).cos())
        .collect();
    let ct_a = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");
    let ct_b = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");
    let (limbs, special, alpha) = (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    );

    // Bitwise gate: the dual-form pipeline must reproduce the PR 4 reference exactly.
    let dual = evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply");
    let reference = evaluator
        .multiply_reference(&ct_a, &ct_b, &rlk)
        .expect("reference multiply");
    assert_eq!(
        dual.c0(),
        reference.c0(),
        "dual-form multiply diverged from the PR 4 reference (c0)"
    );
    assert_eq!(
        dual.c1(),
        reference.c1(),
        "dual-form multiply diverged from the PR 4 reference (c1)"
    );

    // Transform-count gates: both paths match their formulas, and the delta is exactly the
    // dual-form seam (ℓ+1 forwards) + the eval-domain P·d absorption (2·(ℓ+1) inverses).
    let before = metering::counts();
    std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply"));
    let observed = metering::counts().since(&before);
    let expected = accounting::multiply(limbs, special, alpha);
    assert_eq!(
        observed, expected,
        "dual-form multiply performed {observed:?} transforms, formula says {expected:?}"
    );
    let before = metering::counts();
    std::hint::black_box(
        evaluator
            .multiply_reference(&ct_a, &ct_b, &rlk)
            .expect("reference multiply"),
    );
    let observed_pr4 = metering::counts().since(&before);
    let expected_pr4 = accounting::multiply_pr4(limbs, special, alpha);
    assert_eq!(
        observed_pr4, expected_pr4,
        "PR 4 reference multiply performed {observed_pr4:?} transforms, formula says {expected_pr4:?}"
    );
    assert_eq!(observed_pr4.forward - observed.forward, limbs as u64);
    assert_eq!(observed_pr4.inverse - observed.inverse, 2 * limbs as u64);

    let baseline_ns = time_ns(iters, || {
        std::hint::black_box(
            evaluator
                .multiply_reference(&ct_a, &ct_b, &rlk)
                .expect("reference multiply"),
        );
    });
    let ns = time_ns(iters, || {
        std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply"));
    });
    records.push(Record {
        kernel: "multiply_dual",
        n: ctx.degree(),
        limbs: level + 1,
        threads: 1,
        ns_per_op: ns,
        baseline_ns_per_op: Some(baseline_ns),
        speedup: Some(baseline_ns / ns),
        ntt_counts: Some((observed.forward, observed.inverse)),
        note: "dual-form key switch + eval-domain P*d absorption vs PR 4 coefficient path",
    });

    resample_speedup_floor(
        baseline_ns / ns,
        floor,
        || {
            time_ns(iters, || {
                std::hint::black_box(
                    evaluator
                        .multiply_reference(&ct_a, &ct_b, &rlk)
                        .expect("reference multiply"),
                );
            })
        },
        || {
            time_ns(iters, || {
                std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply"));
            })
        },
    )
}

/// Fused multiply_rescale (one ModDown+rescale basis conversion) vs multiply-then-rescale.
fn multiply_rescale_records(params: CkksParams, iters: usize, records: &mut Vec<Record>) {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(1234);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let level = ctx.params().max_level;
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.07).sin())
        .collect();
    let ct_a = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");
    let ct_b = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");

    // Transform-count gate at this parameter shape: the fused path must match the multiply
    // formula exactly (fusion saves conversion work, never transforms) — record the
    // *observed* counts, not the formula.
    let expected = accounting::multiply(
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    );
    let before = metering::counts();
    std::hint::black_box(
        evaluator
            .multiply_rescale(&ct_a, &ct_b, &rlk)
            .expect("multiply_rescale"),
    );
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed, expected,
        "fused multiply_rescale performed {observed:?} transforms, formula says {expected:?}"
    );

    let two_step_ns = time_ns(iters, || {
        let product = evaluator.multiply(&ct_a, &ct_b, &rlk).expect("multiply");
        std::hint::black_box(evaluator.rescale(&product).expect("rescale"));
    });
    let fused_ns = time_ns(iters, || {
        std::hint::black_box(
            evaluator
                .multiply_rescale(&ct_a, &ct_b, &rlk)
                .expect("multiply_rescale"),
        );
    });
    records.push(Record {
        kernel: "multiply_rescale_fused",
        n: ctx.degree(),
        limbs: level + 1,
        threads: 1,
        ns_per_op: fused_ns,
        baseline_ns_per_op: Some(two_step_ns),
        speedup: Some(two_step_ns / fused_ns),
        ntt_counts: Some((observed.forward, observed.inverse)),
        note: "fused ModDown+rescale (one conversion) vs multiply-then-rescale",
    });
}

/// Eval-resident BSGS linear transform vs the PR 4 per-diagonal coefficient path. Asserts
/// bitwise equality and the warm/steady transform-count formulas, then times the steady
/// state of both paths; returns the speedup for the floor gate (best-of-three resampling).
fn linear_transform_records(
    params: CkksParams,
    diagonals: usize,
    iters: usize,
    floor: f64,
    records: &mut Vec<Record>,
) -> f64 {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let n = ctx.slot_count();
    let mut diag_map = std::collections::BTreeMap::new();
    for d in 0..diagonals {
        let values: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((i + d) as f64 * 0.13).sin() * 0.5, 0.01 * d as f64))
            .collect();
        diag_map.insert(d, values);
    }
    let transform = LinearTransform::from_diagonals(n, diag_map).with_bsgs_plan();
    let keys = keygen
        .galois_keys(&transform.required_rotations(), false, &mut rng)
        .expect("galois keys");
    let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin()).collect();
    let scale = ctx.params().default_scale();
    let level = 3.min(ctx.params().max_level);
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");

    // Bitwise gate: the eval-resident apply must reproduce the PR 4 per-diagonal path
    // exactly (ciphertext parts, not just decryptions).
    let plan = transform.bsgs_plan().expect("plan attached").clone();
    let backend = fab_ckks::backend::ExecBackend::new(&evaluator, None, Some(&keys));
    let reference_out = transform
        .apply_bsgs_reference(&backend, &ct)
        .expect("reference transform");

    // Transform-count gates: the first eval-resident apply pays the one-time NTT-diagonal
    // cache fill (`warm`), every later apply performs zero plaintext forwards (`steady`),
    // and the reference path still matches the PR 4 formula.
    let (limbs, special, alpha) = (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    );
    let before = metering::counts();
    let eval_out = transform
        .apply_homomorphic(&evaluator, &ct, &keys)
        .expect("transform");
    let warm = metering::counts().since(&before);
    let expected_warm = accounting::bsgs_stage_eval(
        limbs,
        special,
        alpha,
        &plan,
        transform.diagonal_count(),
        true,
    );
    assert_eq!(
        warm, expected_warm,
        "warm BSGS stage performed {warm:?} transforms, formula says {expected_warm:?}"
    );
    assert_eq!(
        eval_out.c0(),
        reference_out.c0(),
        "BSGS paths diverged (c0)"
    );
    assert_eq!(
        eval_out.c1(),
        reference_out.c1(),
        "BSGS paths diverged (c1)"
    );
    let before = metering::counts();
    std::hint::black_box(
        transform
            .apply_homomorphic(&evaluator, &ct, &keys)
            .expect("transform"),
    );
    let steady = metering::counts().since(&before);
    let expected_steady = accounting::bsgs_stage_eval(
        limbs,
        special,
        alpha,
        &plan,
        transform.diagonal_count(),
        false,
    );
    assert_eq!(
        steady, expected_steady,
        "steady BSGS stage performed {steady:?} transforms, formula says {expected_steady:?}"
    );
    let before = metering::counts();
    std::hint::black_box(
        transform
            .apply_bsgs_reference(&backend, &ct)
            .expect("reference transform"),
    );
    let observed_ref = metering::counts().since(&before);
    let expected_ref =
        accounting::bsgs_stage(limbs, special, alpha, &plan, transform.diagonal_count());
    assert_eq!(
        observed_ref, expected_ref,
        "PR 4 BSGS stage performed {observed_ref:?} transforms, formula says {expected_ref:?}"
    );

    let baseline_ns = time_ns(iters, || {
        std::hint::black_box(
            transform
                .apply_bsgs_reference(&backend, &ct)
                .expect("reference transform"),
        );
    });
    let ns = time_ns(iters, || {
        std::hint::black_box(
            transform
                .apply_homomorphic(&evaluator, &ct, &keys)
                .expect("transform"),
        );
    });
    records.push(Record {
        kernel: "linear_transform_bsgs",
        n: ctx.degree(),
        limbs: level + 1,
        threads: 1,
        ns_per_op: ns,
        baseline_ns_per_op: Some(baseline_ns),
        speedup: Some(baseline_ns / ns),
        ntt_counts: Some((steady.forward, steady.inverse)),
        note: "eval-resident BSGS (NTT-cached diagonals, one inverse pair per giant group) vs PR 4 per-diagonal path",
    });

    resample_speedup_floor(
        baseline_ns / ns,
        floor,
        || {
            time_ns(iters, || {
                std::hint::black_box(
                    transform
                        .apply_bsgs_reference(&backend, &ct)
                        .expect("reference transform"),
                );
            })
        },
        || {
            time_ns(iters, || {
                std::hint::black_box(
                    transform
                        .apply_homomorphic(&evaluator, &ct, &keys)
                        .expect("transform"),
                );
            })
        },
    )
}

fn render_json(mode: &str, cores: usize, untrusted_scaling: bool, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"fab-bench kernels bin (PR 5)\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"cores_available\": {cores},");
    // One top-level flag instead of a repeated per-row field: either the whole file was
    // recorded on parallel hardware or none of it was.
    let _ = writeln!(out, "  \"untrusted_scaling\": {untrusted_scaling},");
    let _ = writeln!(
        out,
        "  \"baseline\": \"key_switch vs key_switch_reference (PR 3 eager), multiply_dual vs multiply_reference (PR 4 coefficient-resident), linear_transform_bsgs vs apply_bsgs_reference (PR 4 per-diagonal); all pairs asserted bitwise equal\","
    );
    out.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"kernel\": \"{}\", \"n\": {}, \"limbs\": {}, \"threads\": {}, \"ns_per_op\": {:.0}",
            r.kernel, r.n, r.limbs, r.threads, r.ns_per_op
        );
        if let Some(b) = r.baseline_ns_per_op {
            let _ = write!(out, ", \"baseline_ns_per_op\": {b:.0}");
        }
        if let Some(s) = r.speedup {
            let _ = write!(out, ", \"speedup\": {s:.2}");
        }
        if let Some((fwd, inv)) = r.ntt_counts {
            let _ = write!(out, ", \"ntt_forward\": {fwd}, \"ntt_inverse\": {inv}");
        }
        let _ = write!(out, ", \"note\": \"{}\"", r.note);
        out.push_str(if i + 1 == records.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "target/BENCH_quick.json".to_string()
            } else {
                "BENCH_pr5.json".to_string()
            }
        });
    let cores = fab_bench::available_cores();
    let untrusted_scaling = fab_bench::warn_untrusted_scaling("Thread-sweep rows");

    let (ks_floor, mul_floor, bsgs_floor) = if quick {
        (
            KEY_SWITCH_FLOOR_QUICK,
            MULTIPLY_FLOOR_QUICK,
            BSGS_FLOOR_QUICK,
        )
    } else {
        (KEY_SWITCH_FLOOR_FULL, MULTIPLY_FLOOR_FULL, BSGS_FLOOR_FULL)
    };

    let mut records = Vec::new();
    let key_switch_speedup;
    let multiply_speedup;
    let bsgs_speedup;
    if quick {
        ntt_records(10, 20, &mut records);
        let params = CkksParams::builder()
            .log_n(10)
            .scale_bits(40)
            .first_prime_bits(40)
            .max_level(3)
            .dnum(2)
            .build()
            .expect("quick params");
        key_switch_speedup = key_switch_records(params.clone(), 3, ks_floor, &mut records);
        multiply_speedup = multiply_records(params.clone(), 3, mul_floor, &mut records);
        multiply_rescale_records(params.clone(), 2, &mut records);
        bsgs_speedup = linear_transform_records(params, 4, 1, bsgs_floor, &mut records);
    } else {
        ntt_records(16, 50, &mut records);
        ntt_records(14, 100, &mut records);
        key_switch_speedup = key_switch_records(CkksParams::testing(), 20, ks_floor, &mut records);
        multiply_speedup = multiply_records(CkksParams::testing(), 10, mul_floor, &mut records);
        multiply_rescale_records(CkksParams::testing(), 5, &mut records);
        bsgs_speedup =
            linear_transform_records(CkksParams::testing(), 16, 2, bsgs_floor, &mut records);
    }

    // Perf-trajectory gates. The NTT floor is enforced only in the full run (long, stable
    // samples); the key-switch / multiply / BSGS floors are enforced in both modes, but
    // conservatively in --quick where one scheduler blip can halve a microsecond-scale
    // sample. Every gated speedup is backed by an asserted transform-count delta above.
    if !quick {
        for r in &records {
            if r.kernel.starts_with("ntt_") {
                let speedup = r.speedup.expect("NTT records carry a speedup");
                assert!(
                    speedup > 1.0,
                    "{} at N={} regressed: lazy is {speedup:.2}x the reference",
                    r.kernel,
                    r.n
                );
            }
        }
    }
    assert!(
        key_switch_speedup >= ks_floor,
        "lazy key switch is only {key_switch_speedup:.2}x the PR 3 reference (floor {ks_floor})"
    );
    assert!(
        multiply_speedup >= mul_floor,
        "dual-form multiply is only {multiply_speedup:.2}x the PR 4 reference (floor {mul_floor})"
    );
    assert!(
        bsgs_speedup >= bsgs_floor,
        "eval-resident BSGS apply is only {bsgs_speedup:.2}x the PR 4 path (floor {bsgs_floor})"
    );

    let json = render_json(
        if quick { "quick" } else { "full" },
        cores,
        untrusted_scaling,
        &records,
    );
    print!("{json}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
