//! Kernel performance trajectory: times the NTT, key-switch and linear-transform kernels and
//! writes a machine-readable `BENCH_pr3.json` so the repo carries a committed perf record.
//!
//! Modes:
//!
//! * default — full-size kernels (forward/inverse NTT at the paper's `N = 2^16`, key switch
//!   and BSGS linear transform at the testing parameter set) written to `BENCH_pr3.json`;
//! * `--quick` — tiny kernels for the CI smoke run: asserts that the lazy NTT matches the
//!   eager reference bit for bit and that multi-threaded key switching is bitwise identical
//!   to single-threaded (timings are reported but not gated — they would be flaky at this
//!   size); writes to `target/BENCH_quick.json`. Any violated invariant panics, failing CI
//!   loudly. The full run additionally asserts the lazy-NTT speedup stays above 1×.
//!
//! Usage: `cargo run --release -p fab-bench --bin kernels [-- --quick] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use fab_ckks::{
    CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, LinearTransform,
    SecretKey,
};
use fab_math::{Complex64, Modulus, NttTable};

/// One measured kernel configuration.
struct Record {
    kernel: &'static str,
    n: usize,
    limbs: usize,
    threads: usize,
    ns_per_op: f64,
    /// Eager-reference (seed implementation) time, where a baseline exists.
    baseline_ns_per_op: Option<f64>,
    /// `baseline / measured` (NTT) or `single-thread / measured` (thread sweeps).
    speedup: Option<f64>,
    note: &'static str,
}

fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn random_residues(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Forward/inverse lazy-reduction NTT vs the eager reference, single-threaded.
fn ntt_records(log_n: usize, iters: usize, records: &mut Vec<Record>) {
    let n = 1usize << log_n;
    let q = fab_math::generate_ntt_prime(54, n, 0).expect("54-bit NTT prime");
    let table = NttTable::new(n, Modulus::new(q).expect("modulus")).expect("NTT table");
    let poly = random_residues(n, q, log_n as u64);

    // Correctness gate before timing: lazy must equal eager bit for bit.
    let mut lazy = poly.clone();
    let mut eager = poly.clone();
    table.forward(&mut lazy);
    table.forward_reference(&mut eager);
    assert_eq!(lazy, eager, "lazy forward NTT diverged from the reference");
    table.inverse(&mut lazy);
    table.inverse_reference(&mut eager);
    assert_eq!(lazy, eager, "lazy inverse NTT diverged from the reference");
    assert_eq!(lazy, poly, "NTT roundtrip is not the identity");

    let mut data = poly.clone();
    let fwd_lazy = time_ns(iters, || table.forward(&mut data));
    let fwd_eager = time_ns(iters, || table.forward_reference(&mut data));
    let inv_lazy = time_ns(iters, || table.inverse(&mut data));
    let inv_eager = time_ns(iters, || table.inverse_reference(&mut data));
    std::hint::black_box(&data);

    records.push(Record {
        kernel: "ntt_forward",
        n,
        limbs: 1,
        threads: 1,
        ns_per_op: fwd_lazy,
        baseline_ns_per_op: Some(fwd_eager),
        speedup: Some(fwd_eager / fwd_lazy),
        note: "lazy-reduction Harvey vs eager seed reference, 54-bit prime",
    });
    records.push(Record {
        kernel: "ntt_inverse",
        n,
        limbs: 1,
        threads: 1,
        ns_per_op: inv_lazy,
        baseline_ns_per_op: Some(inv_eager),
        speedup: Some(inv_eager / inv_lazy),
        note: "lazy + fused N^-1 vs eager seed reference, 54-bit prime",
    });
}

/// Key-switch kernel at the testing parameter set, swept over worker counts.
fn key_switch_records(params: CkksParams, iters: usize, records: &mut Vec<Record>) {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(42);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let rlk = keygen.relinearization_key(&mut rng);
    let evaluator = Evaluator::new(ctx.clone());
    let level = ctx.params().max_level;
    let basis = ctx.basis_at_level(level).expect("basis");
    let d = fab_ckks::sampling::sample_uniform(&mut rng, &basis);

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut sweep = vec![1usize, 2];
    if cores > 2 {
        sweep.push(cores);
    }
    sweep.dedup();

    let reference = evaluator
        .key_switch(&d, &rlk.key, level)
        .expect("key switch");
    let mut single_thread_ns = None;
    for &threads in &sweep {
        fab_par::set_threads(threads);
        // Determinism gate: limb partitioning must make thread count invisible in the output.
        let check = evaluator
            .key_switch(&d, &rlk.key, level)
            .expect("key switch");
        assert_eq!(
            check, reference,
            "key switch output changed at {threads} threads"
        );
        let ns = time_ns(iters, || {
            std::hint::black_box(
                evaluator
                    .key_switch(&d, &rlk.key, level)
                    .expect("key switch"),
            );
        });
        if threads == 1 {
            single_thread_ns = Some(ns);
        }
        records.push(Record {
            kernel: "key_switch",
            n: ctx.degree(),
            limbs: level + 1,
            threads,
            ns_per_op: ns,
            baseline_ns_per_op: single_thread_ns,
            speedup: single_thread_ns.map(|base| base / ns),
            note: "hybrid Decomp->ModUp->KSKIP->ModDown, limb-parallel via fab-par",
        });
    }
    fab_par::set_threads(1);
}

/// BSGS hoisted linear transform at the testing parameter set.
fn linear_transform_records(
    params: CkksParams,
    diagonals: usize,
    iters: usize,
    records: &mut Vec<Record>,
) {
    let ctx = CkksContext::new_arc(params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let n = ctx.slot_count();
    let mut diag_map = std::collections::BTreeMap::new();
    for d in 0..diagonals {
        let values: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((i + d) as f64 * 0.13).sin() * 0.5, 0.01 * d as f64))
            .collect();
        diag_map.insert(d, values);
    }
    let transform = LinearTransform::from_diagonals(n, diag_map).with_bsgs_plan();
    let keys = keygen
        .galois_keys(&transform.required_rotations(), false, &mut rng)
        .expect("galois keys");
    let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin()).collect();
    let scale = ctx.params().default_scale();
    let level = 3.min(ctx.params().max_level);
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");

    let ns = time_ns(iters, || {
        std::hint::black_box(
            transform
                .apply_homomorphic(&evaluator, &ct, &keys)
                .expect("transform"),
        );
    });
    records.push(Record {
        kernel: "linear_transform_bsgs",
        n: ctx.degree(),
        limbs: level + 1,
        threads: 1,
        ns_per_op: ns,
        baseline_ns_per_op: None,
        speedup: None,
        note: "BSGS plan with hoisted baby-step batch (scratch-arena evaluator)",
    });
}

fn render_json(mode: &str, cores: usize, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"fab-bench kernels bin (PR 3)\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"cores_available\": {cores},");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"kernel\": \"{}\", \"n\": {}, \"limbs\": {}, \"threads\": {}, \"ns_per_op\": {:.0}",
            r.kernel, r.n, r.limbs, r.threads, r.ns_per_op
        );
        if let Some(b) = r.baseline_ns_per_op {
            let _ = write!(out, ", \"baseline_ns_per_op\": {b:.0}");
        }
        if let Some(s) = r.speedup {
            let _ = write!(out, ", \"speedup\": {s:.2}");
        }
        let _ = write!(out, ", \"note\": \"{}\"", r.note);
        out.push_str(if i + 1 == records.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "target/BENCH_quick.json".to_string()
            } else {
                "BENCH_pr3.json".to_string()
            }
        });
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let mut records = Vec::new();
    if quick {
        ntt_records(10, 20, &mut records);
        let params = CkksParams::builder()
            .log_n(10)
            .scale_bits(40)
            .first_prime_bits(40)
            .max_level(3)
            .dnum(2)
            .build()
            .expect("quick params");
        key_switch_records(params.clone(), 3, &mut records);
        linear_transform_records(params, 4, 1, &mut records);
    } else {
        ntt_records(16, 50, &mut records);
        ntt_records(14, 100, &mut records);
        key_switch_records(CkksParams::testing(), 5, &mut records);
        linear_transform_records(CkksParams::testing(), 16, 2, &mut records);
    }

    // The perf trajectory's headline claim: lazy reduction must beat the eager reference.
    // Enforced only in the full run (long, stable samples at N = 2^14..2^16): the quick CI
    // smoke times microsecond-scale kernels where one scheduler blip could flip the ratio,
    // so CI gates on the deterministic bitwise checks above and merely *reports* timings.
    if !quick {
        for r in &records {
            if r.kernel.starts_with("ntt_") {
                let speedup = r.speedup.expect("NTT records carry a speedup");
                assert!(
                    speedup > 1.0,
                    "{} at N={} regressed: lazy is {speedup:.2}x the reference",
                    r.kernel,
                    r.n
                );
            }
        }
    }

    let json = render_json(if quick { "quick" } else { "full" }, cores, &records);
    print!("{json}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
