//! Crash-recovery benchmark: sweeps every deterministic [`fab_serve::CrashPoint`] of a
//! journaled serving run, gates the recovery contract, and writes recovery-latency rows to
//! a machine-readable `BENCH_pr9.json`.
//!
//! For each kill site the bin replays the full crash cycle — journaled run armed with the
//! crash point, process death, a fresh process recovering from the journal bytes alone —
//! and asserts, before any number is reported:
//!
//! * recovered outcomes (settled + replayed) are **bitwise identical** to a prefix of the
//!   uninterrupted run (write-ahead discipline: a crash before an admission append
//!   legitimately loses the unacknowledged tail, never the acknowledged middle);
//! * **zero duplicate executions**: requests with a durable `Completed` record are settled
//!   from the journal, never re-run;
//! * a simulated kill never tears the journal (`torn_bytes == 0`) and never produces
//!   duplicate `Started` records.
//!
//! Latency rows aggregate `FabServer::recover` wall time per kill-site class
//! (before-append / after-append / mid-execute), plus the cost of validating a training
//! checkpoint ([`fab_lr::TrainingCheckpoint::load`]) and the torn-`.tmp` shadow gate from
//! the resumable-training harness. Wall-clock numbers on a shared runner carry scheduler
//! noise; [`fab_bench::warn_untrusted_scaling`] flags the file once at the top level.
//!
//! Usage: `cargo run --release -p fab-bench --bin recovery [-- --quick] [--out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use fab_ckks::{
    key_set_bytes, Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, GaloisKeys,
    KeyGenerator, RelinearizationKey, SecretKey,
};
use fab_lr::TrainingCheckpoint;
use fab_serve::{
    CrashPoint, FabServer, FakeClock, Program, Request, RequestOutcome, ServeFault, ServeOp,
    ServerConfig, TenantId,
};

const ROTATIONS: [usize; 2] = [1, 3];

struct Tenant {
    rlk: RelinearizationKey,
    keys: GaloisKeys,
    input: Ciphertext,
}

struct Fixture {
    ctx: Arc<CkksContext>,
    tenants: Vec<Tenant>,
    config: ServerConfig,
    rounds: u64,
    program_len: usize,
}

fn make_fixture(quick: bool) -> Fixture {
    let (log_n, max_level, tenant_count, rounds, program_len) = if quick {
        (5, 2, 2, 2, 2)
    } else {
        (8, 3, 3, 3, 4)
    };
    let params = CkksParams::builder()
        .log_n(log_n)
        .scale_bits(40)
        .first_prime_bits(50)
        .max_level(max_level)
        .dnum(1)
        .secret_hamming_weight(Some(16))
        .build()
        .expect("valid parameters");
    let ctx = CkksContext::new_arc(params).expect("context");
    let tenants: Vec<Tenant> = (0..tenant_count)
        .map(|t| {
            let mut rng = ChaCha20Rng::seed_from_u64(0x9EC0 + t as u64);
            let sk = SecretKey::generate(&ctx, &mut rng);
            let keygen = KeyGenerator::new(ctx.clone(), sk);
            let pk = keygen.public_key(&mut rng);
            let rlk = keygen.relinearization_key(&mut rng);
            let keys = keygen
                .galois_keys(&ROTATIONS, true, &mut rng)
                .expect("galois keys");
            let encoder = Encoder::new(ctx.clone());
            let encryptor = Encryptor::new(ctx.clone(), pk);
            let scale = ctx.params().default_scale();
            let values: Vec<f64> = (0..ctx.slot_count())
                .map(|i| ((i + t) as f64 * 0.17).cos())
                .collect();
            let pt = encoder
                .encode_real(&values, scale, ctx.params().max_level)
                .expect("encode");
            let input = encryptor.encrypt(&pt, &mut rng).expect("encrypt");
            Tenant { rlk, keys, input }
        })
        .collect();
    let config = ServerConfig {
        cache_budget_bytes: tenant_count * key_set_bytes(ctx.params(), ROTATIONS.len() + 1),
        prefetch: true,
        lookahead: 8,
        ..ServerConfig::default()
    };
    Fixture {
        ctx,
        tenants,
        config,
        rounds,
        program_len,
    }
}

fn make_server(fixture: &Fixture) -> FabServer {
    let mut server = FabServer::new(Evaluator::new(fixture.ctx.clone()), fixture.config);
    server.use_fake_clock(Arc::new(FakeClock::with_step(1)));
    for (t, tenant) in fixture.tenants.iter().enumerate() {
        server.register_tenant(TenantId(t as u32), &tenant.rlk, &tenant.keys);
    }
    server
}

fn submit_stream(server: &mut FabServer, fixture: &Fixture) {
    for round in 0..fixture.rounds {
        for (t, tenant) in fixture.tenants.iter().enumerate() {
            let mut ops = vec![ServeOp::Rotate(1)];
            ops.extend(
                Program::random(51 + round, fixture.program_len, &ROTATIONS)
                    .ops()
                    .iter()
                    .copied(),
            );
            server.submit(Request {
                tenant: TenantId(t as u32),
                program: Program::new(ops),
                input: tenant.input.clone(),
            });
        }
    }
}

/// Outcome equivalence across the crash boundary (mirrors the crash-recovery test gate):
/// identity and ciphertext bits must match; settled failures replay as
/// [`ServeFault::Replayed`] with the original class and rendered description.
fn assert_equivalent(label: &str, got: &RequestOutcome, want: &RequestOutcome) {
    assert_eq!(got.request(), want.request(), "id diverged: {label}");
    assert_eq!(got.tenant(), want.tenant(), "tenant diverged: {label}");
    match (got, want) {
        (RequestOutcome::Completed(g), RequestOutcome::Completed(w)) => {
            assert_eq!(g.output.c0(), w.output.c0(), "c0 diverged: {label}");
            assert_eq!(g.output.c1(), w.output.c1(), "c1 diverged: {label}");
        }
        (RequestOutcome::Failed(g), RequestOutcome::Failed(w)) => match &g.fault {
            ServeFault::Replayed { class, description } => {
                assert_eq!(*class, w.fault.class(), "class diverged: {label}");
                assert_eq!(*description, w.fault.to_string(), "{label}");
            }
            fault => assert_eq!(fault, &w.fault, "fault diverged: {label}"),
        },
        (g, w) => panic!("outcome shape diverged: {label}: {g:?} vs {w:?}"),
    }
}

fn class_of(point: CrashPoint) -> &'static str {
    match point {
        CrashPoint::BeforeAppend(_) => "before_append",
        CrashPoint::AfterAppend(_) => "after_append",
        CrashPoint::MidExecute(_) => "mid_execute",
        CrashPoint::MidCheckpoint { .. } => "mid_checkpoint",
    }
}

#[derive(Default)]
struct ClassRow {
    points: usize,
    recover_us: Vec<u64>,
    settled: u64,
    readmitted: u64,
    replayed_executions: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "target/BENCH_recovery_quick.json".to_string()
            } else {
                "BENCH_pr9.json".to_string()
            }
        });
    let cores = fab_bench::available_cores();
    let untrusted_scaling = fab_bench::warn_untrusted_scaling("Recovery latencies");
    let fixture = make_fixture(quick);

    // Uninterrupted journaled reference run.
    let mut reference_server = make_server(&fixture);
    reference_server.attach_fresh_journal();
    submit_stream(&mut reference_server, &fixture);
    let reference = reference_server.run();
    let appends = reference_server
        .journal()
        .expect("journal attached")
        .record_count()
        - 1;
    let executes = reference_server.executions();
    let journal_bytes = reference_server
        .journal()
        .expect("journal attached")
        .byte_len();
    assert!(
        reference.iter().all(|o| o.completed().is_some()),
        "the latency fixture is fault-free; every request completes"
    );

    // The sweep: every journal append boundary (both sides) and every execution window.
    let sweep = CrashPoint::sweep(appends, executes);
    assert_eq!(sweep.len() as u64, 2 * appends + executes);
    let mut rows: std::collections::BTreeMap<&'static str, ClassRow> =
        std::collections::BTreeMap::new();
    for &point in &sweep {
        let label = format!("{point:?}");

        let mut crashed = make_server(&fixture);
        crashed.attach_fresh_journal();
        crashed.set_crash_point(point);
        submit_stream(&mut crashed, &fixture);
        let _lost = crashed.run();
        assert!(crashed.has_crashed(), "{label} never fired");
        let disk = crashed.journal_bytes().expect("journal attached").to_vec();

        let mut recovered = make_server(&fixture);
        let start = Instant::now();
        let report = recovered
            .recover(&disk)
            .unwrap_or_else(|e| panic!("{label}: clean kill must recover: {e}"));
        let recover_us = start.elapsed().as_micros() as u64;

        assert_eq!(report.torn_bytes, 0, "{label}: simulated kills never tear");
        assert_eq!(report.duplicate_starts, 0, "{label}: duplicate Started");
        let settled_completed = report
            .settled
            .iter()
            .filter(|o| o.completed().is_some())
            .count() as u64;
        let settled = report.settled.len() as u64;
        let readmitted = report.readmitted.len() as u64;
        let mut outcomes = report.settled;
        outcomes.extend(recovered.run());
        outcomes.sort_by_key(RequestOutcome::request);
        assert!(
            outcomes.len() <= reference.len(),
            "{label}: fabricated work"
        );
        for (got, want) in outcomes.iter().zip(&reference) {
            assert_equivalent(&label, got, want);
        }
        let completed_total = outcomes.iter().filter(|o| o.completed().is_some()).count() as u64;
        assert_eq!(
            recovered.executions(),
            completed_total - settled_completed,
            "{label}: a journaled completion was re-executed"
        );

        let row = rows.entry(class_of(point)).or_default();
        row.points += 1;
        row.recover_us.push(recover_us);
        row.settled += settled;
        row.readmitted += readmitted;
        row.replayed_executions += recovered.executions();
    }

    // Training-checkpoint rows: validation latency of a durable checkpoint, plus the
    // torn-`.tmp` shadow gate (a partial checkpoint write must never displace a valid one).
    let dir = std::env::temp_dir().join("fab-bench-recovery");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt_path = dir.join("weights.ckpt");
    let checkpoint = TrainingCheckpoint {
        iteration: 7,
        weights: fixture.tenants[0].input.clone(),
    };
    checkpoint
        .save_atomic(&ckpt_path, &fixture.ctx)
        .expect("checkpoint write");
    let blob = checkpoint.to_bytes(&fixture.ctx);
    for torn in [0, blob.len() / 2, blob.len() - 1] {
        std::fs::write(ckpt_path.with_extension("tmp"), &blob[..torn]).expect("torn tmp");
        let survived = TrainingCheckpoint::load(&ckpt_path, &fixture.ctx)
            .expect("a torn .tmp must never shadow the valid checkpoint");
        assert_eq!(survived.iteration, 7);
    }
    let mut load_us = Vec::new();
    for _ in 0..10 {
        let start = Instant::now();
        let loaded = TrainingCheckpoint::load(&ckpt_path, &fixture.ctx).expect("valid checkpoint");
        load_us.push(start.elapsed().as_micros() as u64);
        assert_eq!(loaded.iteration, 7);
    }
    load_us.sort_unstable();
    std::fs::remove_dir_all(&dir).ok();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"fab-bench recovery bin (PR 9)\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"cores_available\": {cores},");
    let _ = writeln!(out, "  \"untrusted_scaling\": {untrusted_scaling},");
    let _ = writeln!(
        out,
        "  \"params\": {{\"log_n\": {}, \"max_level\": {}, \"dnum\": {}}},",
        fixture.ctx.params().degree().trailing_zeros(),
        fixture.ctx.params().max_level,
        fixture.ctx.params().dnum
    );
    let _ = writeln!(
        out,
        "  \"fixture\": {{\"tenants\": {}, \"requests\": {}, \"journal_appends\": {appends}, \"journal_bytes\": {journal_bytes}, \"crash_points\": {}}},",
        fixture.tenants.len(),
        reference.len(),
        sweep.len()
    );
    let _ = writeln!(
        out,
        "  \"gates\": {{\"bitwise_identical_prefix\": true, \"zero_duplicate_executions\": true, \"zero_torn_bytes\": true, \"zero_duplicate_starts\": true, \"torn_checkpoint_never_shadows\": true}},"
    );
    out.push_str("  \"recovery_latency\": [\n");
    let row_count = rows.len();
    for (i, (class, row)) in rows.iter_mut().enumerate() {
        row.recover_us.sort_unstable();
        let mean = row.recover_us.iter().sum::<u64>() as f64 / row.recover_us.len() as f64;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"class\": \"{class}\", \"points\": {}, \"recover_us\": {{\"min\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}, \"mean\": {:.1}}}",
            row.points,
            row.recover_us[0],
            percentile(&row.recover_us, 0.50),
            percentile(&row.recover_us, 0.95),
            row.recover_us[row.recover_us.len() - 1],
            mean
        );
        let _ = write!(
            out,
            ", \"settled\": {}, \"readmitted\": {}, \"replayed_executions\": {}",
            row.settled, row.readmitted, row.replayed_executions
        );
        out.push_str(if i + 1 == row_count { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"checkpoint\": {{\"blob_bytes\": {}, \"load_us\": {{\"min\": {}, \"p50\": {}, \"max\": {}}}}}",
        blob.len(),
        load_us[0],
        percentile(&load_us, 0.50),
        load_us[load_us.len() - 1]
    );
    out.push_str("}\n");

    print!("{out}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &out).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
