//! Prints the perf-trajectory markdown table aggregated from the committed
//! `BENCH_pr*.json` files — the same table the README embeds.
//!
//! Usage: `cargo run --release -p fab-bench --bin summary [-- REPO_ROOT]`

use std::path::Path;

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    print!("{}", fab_bench::summary::perf_trajectory(Path::new(&root)));
}
