//! Perf-trajectory aggregation over the committed `BENCH_pr*.json` files.
//!
//! The bench bins write hand-rolled JSON (the workspace deliberately carries no JSON
//! dependency), so this module carries the matching reader: a minimal recursive-descent
//! parser for the JSON subset those bins emit, plus [`perf_trajectory`], which folds
//! `BENCH_pr3.json .. BENCH_pr10.json` into one markdown table of headline numbers per PR —
//! the longitudinal view the README embeds. Missing files are tolerated (the row reports
//! what is absent), so the helper keeps working on partial checkouts and in future PRs.

use std::fmt::Write as _;
use std::path::Path;

/// A parsed JSON value (subset: no lossless distinction between integers and doubles —
/// everything numeric is an `f64`, which is exact for every count the bench bins emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (the bench files never repeat keys).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a one-line description with a byte offset on malformed input or trailing
/// non-whitespace.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected byte at {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        let ch = char::from_u32(hex).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

/// The first kernel row whose name matches `pred`, preferring single-thread rows (the bins
/// that sweep threads list `threads: 1` first; the roofline bin omits the field).
fn find_kernel(doc: &Value, pred: impl Fn(&str) -> bool) -> Option<&Value> {
    doc.get("kernels")?.as_arr()?.iter().find(|row| {
        row.get("kernel").and_then(Value::as_str).is_some_and(&pred)
            && row
                .get("threads")
                .and_then(Value::as_f64)
                .map_or(true, |t| t == 1.0)
    })
}

fn kernel_cell(doc: &Value, pred: impl Fn(&str) -> bool) -> String {
    match find_kernel(doc, pred) {
        Some(row) => {
            let ns = row.get("ns_per_op").and_then(Value::as_f64).unwrap_or(0.0);
            let n = row.get("n").and_then(Value::as_f64).unwrap_or(0.0);
            let name = row.get("kernel").and_then(Value::as_str).unwrap_or("?");
            format!("{:.0} µs ({name}, n={n})", ns / 1e3)
        }
        None => "—".to_string(),
    }
}

/// One-line headline for a PR's bench file.
fn headline(pr: u32, doc: &Value) -> String {
    match pr {
        6 => {
            // Serving benchmark: report the busiest prefetching configuration.
            let best = doc.get("configs").and_then(Value::as_arr).and_then(|cfgs| {
                cfgs.iter()
                    .filter(|c| c.get("prefetch") == Some(&Value::Bool(true)))
                    .max_by_key(|c| c.get("tenants").and_then(Value::as_f64).unwrap_or(0.0) as u64)
            });
            match best {
                Some(c) => format!(
                    "serving: {:.0}% eval-key hit rate, p95 {:.0} µs at {} tenants",
                    c.get("hit_rate").and_then(Value::as_f64).unwrap_or(0.0) * 100.0,
                    c.get("p95_us").and_then(Value::as_f64).unwrap_or(0.0),
                    c.get("tenants").and_then(Value::as_f64).unwrap_or(0.0)
                ),
                None => "serving benchmark (no prefetch config found)".to_string(),
            }
        }
        7 => {
            let stream = doc
                .get("streaming_baseline")
                .and_then(|s| s.get("read_gbps"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let ks = find_kernel(doc, |k| k == "key_switch")
                .map(|row| {
                    let bytes = row.get("bytes_read").and_then(Value::as_f64).unwrap_or(0.0)
                        + row
                            .get("bytes_written")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0);
                    let ns = row.get("ns_per_op").and_then(Value::as_f64).unwrap_or(1.0);
                    bytes / ns
                })
                .unwrap_or(0.0);
            format!(
                "roofline: DRAM streaming {stream:.1} GB/s, key_switch {ks:.1} GB/s effective (metered bytes)"
            )
        }
        8 => {
            let outcomes = doc.get("outcomes");
            let get = |k: &str| {
                outcomes
                    .and_then(|o| o.get(k))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0)
            };
            format!(
                "chaos: {:.0} completed / {:.0} failed typed / {:.0} shed, flaky tenants recovered",
                get("completed"),
                get("failed"),
                get("shed")
            )
        }
        9 => {
            // Worst p95 recovery latency across the kill-site classes.
            let p95 = doc
                .get("recovery_latency")
                .and_then(Value::as_arr)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|r| r.get("recover_us")?.get("p95")?.as_f64())
                        .fold(0.0f64, f64::max)
                })
                .unwrap_or(0.0);
            let points = doc
                .get("fixture")
                .and_then(|f| f.get("crash_points"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            format!("crash sweep: {points:.0} kill sites, recover p95 {p95:.0} µs, zero duplicate executions")
        }
        10 => {
            let sites = doc
                .get("simdisk_sweep")
                .and_then(|s| s.get("kill_sites"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let ratio = |key: &str| {
                doc.get("recovery_latency")
                    .and_then(|r| r.get(key))
                    .and_then(|u| u.get("bytes"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0)
            };
            let before = ratio("uncompacted");
            let after = ratio("compacted");
            let pct = if before > 0.0 {
                100.0 * (1.0 - after / before)
            } else {
                0.0
            };
            format!(
                "durability: {sites:.0} disk-syscall kill sites survive power loss, compaction reclaims {pct:.0}% of the journal"
            )
        }
        _ => doc.get("baseline").and_then(Value::as_str).map_or_else(
            || "kernel speedups vs seed reference".to_string(),
            |s| s.split(';').next().unwrap_or(s).to_string(),
        ),
    }
}

/// Renders the markdown perf-trajectory table from `BENCH_pr3.json .. BENCH_pr10.json`
/// under `repo_root`. Files that are missing or malformed produce a placeholder row rather
/// than an error.
pub fn perf_trajectory(repo_root: &Path) -> String {
    let mut out = String::from(
        "| PR | ntt_forward | key_switch | multiply | headline |\n|---|---|---|---|---|\n",
    );
    for pr in 3..=10u32 {
        let path = repo_root.join(format!("BENCH_pr{pr}.json"));
        let doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| parse(&s).ok());
        match doc {
            Some(doc) => {
                let _ = writeln!(
                    out,
                    "| pr{pr} | {} | {} | {} | {} |",
                    kernel_cell(&doc, |k| k == "ntt_forward"),
                    kernel_cell(&doc, |k| k == "key_switch"),
                    kernel_cell(&doc, |k| k.starts_with("multiply")),
                    headline(pr, &doc)
                );
            }
            None => {
                let _ = writeln!(out, "| pr{pr} | — | — | — | BENCH_pr{pr}.json not found |");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_bench_json_subset() {
        let doc =
            parse(r#"{"a": 1.5, "b": [true, false, null, "x\n\"y\""], "c": {"n": -3e2}, "d": []}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.5));
        let arr = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Value::Bool(true));
        assert_eq!(arr[3].as_str(), Some("x\n\"y\""));
        assert_eq!(
            doc.get("c").unwrap().get("n").unwrap().as_f64(),
            Some(-300.0)
        );
        assert_eq!(doc.get("d").unwrap().as_arr(), Some(&[][..]));
        assert!(parse("{\"k\": }").is_err());
        assert!(parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn trajectory_table_covers_every_committed_bench_file() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let table = perf_trajectory(&root);
        for pr in 3..=10 {
            let line = table
                .lines()
                .find(|l| l.starts_with(&format!("| pr{pr} ")))
                .unwrap_or_else(|| panic!("no row for pr{pr} in:\n{table}"));
            assert!(
                !line.contains("not found"),
                "BENCH_pr{pr}.json missing from the checkout:\n{line}"
            );
        }
        // The files the parser must understand span several generations of schema.
        assert!(table.contains("ntt_forward, n=65536"), "{table}");
        assert!(table.contains("serving:"), "{table}");
        assert!(table.contains("roofline: DRAM streaming"), "{table}");
        assert!(table.contains("chaos:"), "{table}");
        assert!(table.contains("crash sweep:"), "{table}");
        assert!(table.contains("durability:"), "{table}");
    }
}
