//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Each function returns the rendered rows as a `String` (so tests can assert on them) and is
//! driven entirely by the accelerator model (`fab-core`), the CKKS parameter sets (`fab-ckks`),
//! the LR workload (`fab-lr`) and the published baseline constants.

use std::fmt::Write as _;

use fab_ckks::linear_transform::coeff_to_slot_offset_sets;
use fab_ckks::{BsgsPlan, CkksParams};
use fab_core::baselines::{
    table4_resources, table7_bootstrapping, table8_lr_training, HELR_TASK,
    LEVELED_FHE_CLIENT_ENCRYPT_S, TABLE5_FAB_REPORTED, TABLE5_GPU, TABLE6_FAB_REPORTED,
    TABLE6_HEAX,
};
use fab_core::workload::bootstrap_cost;
use fab_core::{
    amortized_mult_time_us, dnum_sweep, fft_iter_sweep, FabConfig, OpCostModel, ResourceEstimator,
    WorkingSetReport,
};
use fab_lr::lr_training_time_s;

/// The experiments that can be regenerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 2: the FPGA parameter set.
    Table2,
    /// Figure 1: dnum design-space sweep.
    Figure1,
    /// Figure 2: ﬀtIter design-space sweep.
    Figure2,
    /// Table 3: FPGA resource utilisation.
    Table3,
    /// Table 4: resource comparison with F1 and BTS.
    Table4,
    /// Table 5: basic CKKS operation latency vs GPU.
    Table5,
    /// Table 6: NTT / Mult throughput vs HEAX.
    Table6,
    /// Table 7: bootstrapping comparison.
    Table7,
    /// Table 8: logistic-regression training comparison.
    Table8,
    /// Section 5.5: leveled-FHE comparison.
    Leveled,
}

impl Experiment {
    /// All experiments, in paper order.
    pub fn all() -> Vec<Experiment> {
        vec![
            Experiment::Table2,
            Experiment::Figure1,
            Experiment::Figure2,
            Experiment::Table3,
            Experiment::Table4,
            Experiment::Table5,
            Experiment::Table6,
            Experiment::Table7,
            Experiment::Table8,
            Experiment::Leveled,
        ]
    }

    /// Parses a command-line name (e.g. `table5`, `figure1`, `leveled`).
    pub fn parse(name: &str) -> Option<Experiment> {
        match name.to_ascii_lowercase().as_str() {
            "table2" => Some(Experiment::Table2),
            "figure1" => Some(Experiment::Figure1),
            "figure2" => Some(Experiment::Figure2),
            "table3" => Some(Experiment::Table3),
            "table4" => Some(Experiment::Table4),
            "table5" => Some(Experiment::Table5),
            "table6" => Some(Experiment::Table6),
            "table7" => Some(Experiment::Table7),
            "table8" => Some(Experiment::Table8),
            "leveled" => Some(Experiment::Leveled),
            _ => None,
        }
    }
}

/// Renders one experiment.
pub fn render_experiment(experiment: Experiment) -> String {
    match experiment {
        Experiment::Table2 => table2(),
        Experiment::Figure1 => figure1(),
        Experiment::Figure2 => figure2(),
        Experiment::Table3 => table3(),
        Experiment::Table4 => table4(),
        Experiment::Table5 => table5(),
        Experiment::Table6 => table6(),
        Experiment::Table7 => table7(),
        Experiment::Table8 => table8(),
        Experiment::Leveled => leveled(),
    }
}

/// Renders every experiment in paper order.
pub fn render_all() -> String {
    Experiment::all()
        .into_iter()
        .map(render_experiment)
        .collect::<Vec<_>>()
        .join("\n")
}

fn table2() -> String {
    let p = CkksParams::fab_paper();
    let mut out = String::new();
    writeln!(
        out,
        "== Table 2: parameter set for the FPGA implementation =="
    )
    .unwrap();
    writeln!(
        out,
        "log q = {}  N = 2^{}  L = {}  dnum = {}  fftIter = {}  lambda = {}",
        p.scale_bits, p.log_n, p.max_level, p.dnum, p.fft_iter, p.security_bits
    )
    .unwrap();
    writeln!(
        out,
        "limbs(Q) = {}  extension limbs = {}  log PQ = {:.0}  max ciphertext = {:.1} MB",
        p.total_q_limbs(),
        p.special_limbs(),
        p.log_pq(),
        p.max_ciphertext_bytes() as f64 / (1024.0 * 1024.0)
    )
    .unwrap();
    let report = WorkingSetReport::new(&FabConfig::alveo_u280(), &p);
    writeln!(
        out,
        "keyswitch working set = {:.0} MB keys + {:.0} MB ciphertext vs {:.0} MB on-chip",
        report.key_mib, report.ciphertext_mib, report.on_chip_mib
    )
    .unwrap();
    out
}

fn figure1() -> String {
    let p = CkksParams::fab_paper();
    let points = dnum_sweep(&p, 32, p.bootstrap_depth(), &[1, 2, 3, 4, 5, 6]);
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 1: dnum vs levels after bootstrapping and key size =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<6} {:<9} {:<7} {:<18} {:<14}",
        "dnum", "limbs(Q)", "alpha", "levels after boot", "key size (MB)"
    )
    .unwrap();
    for pt in points {
        writeln!(
            out,
            "{:<6} {:<9} {:<7} {:<18} {:<14.1}",
            pt.dnum, pt.q_limbs, pt.alpha, pt.levels_after_bootstrap, pt.key_size_mib
        )
        .unwrap();
    }
    out
}

fn figure2() -> String {
    let config = FabConfig::alveo_u280();
    let p = CkksParams::fab_paper();
    let points = fft_iter_sweep(&config, &p, &[1, 2, 3, 4, 5, 6]);
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 2: fftIter vs bootstrapping time and NTT count =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:<7} {:<13} {:<14} {:<12} {:<20}",
        "fftIter", "depth", "levels after", "T_boot (ms)", "#NTT ops", "amortized (us/slot)"
    )
    .unwrap();
    for pt in points {
        writeln!(
            out,
            "{:<8} {:<7} {:<13} {:<14.1} {:<12} {:<20.3}",
            pt.fft_iter,
            pt.bootstrap_depth,
            pt.levels_after_bootstrap,
            pt.bootstrap_ms,
            pt.ntt_operations,
            pt.amortized_mult_us
        )
        .unwrap();
    }
    // The rotation schedule behind the sweep: per-diagonal vs the exact BSGS plans of the
    // CoeffToSlot stages (the schedule the software pipeline executes and fab-core prices).
    writeln!(
        out,
        "\nCoeffToSlot key-switched rotations at N = 2^{} (per-diagonal -> BSGS+hoisting):",
        p.log_n
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:<14} {:<12} {:<10}",
        "fftIter", "per-diagonal", "BSGS", "reduction"
    )
    .unwrap();
    for fft_iter in [1usize, 2, 3, 4, 5, 6] {
        let mut naive = 0usize;
        let mut bsgs = 0usize;
        for offsets in coeff_to_slot_offset_sets(p.slot_count(), fft_iter) {
            naive += offsets.iter().filter(|&&d| d != 0).count();
            bsgs += BsgsPlan::for_offsets(p.slot_count(), &offsets).rotation_count();
        }
        writeln!(
            out,
            "{:<8} {:<14} {:<12} {:<10.2}",
            fft_iter,
            naive,
            bsgs,
            naive as f64 / bsgs as f64
        )
        .unwrap();
    }
    out
}

fn table3() -> String {
    let estimate = ResourceEstimator::new().estimate(&FabConfig::alveo_u280());
    let mut out = String::new();
    writeln!(
        out,
        "== Table 3: FAB hardware resource utilisation (modelled) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<12} {:<12} {:<12}",
        "Resource", "Available", "Utilized", "% Utilization"
    )
    .unwrap();
    for (name, available, utilized, percent) in estimate.rows() {
        writeln!(
            out,
            "{name:<10} {available:<12} {utilized:<12} {percent:<12.2}"
        )
        .unwrap();
    }
    out
}

fn table4() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Table 4: modular multipliers, register file and on-chip memory =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<6} {:<16} {:<12} {:<10} {:<16}",
        "Work", "(N, log q)", "Mod mults", "RF (MB)", "On-chip (MB)"
    )
    .unwrap();
    for row in table4_resources() {
        writeln!(
            out,
            "{:<6} {:<16} {:<12} {:<10} {:<16}",
            row.name,
            format!("2^{}, {}", row.log_n, row.log_q),
            row.modular_multipliers,
            row.register_file_mb,
            row.on_chip_memory_mb
        )
        .unwrap();
    }
    out
}

fn table5() -> String {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::gpu_comparison();
    let model = OpCostModel::new(config.clone(), params.clone());
    let level = params.max_level;
    let rows = [
        (
            "Add",
            model.add(level).time_ms(&config),
            TABLE5_GPU.add_ms,
            TABLE5_FAB_REPORTED.add_ms,
        ),
        (
            "Mult",
            model.multiply(level).time_ms(&config),
            TABLE5_GPU.mult_ms,
            TABLE5_FAB_REPORTED.mult_ms,
        ),
        (
            "Rescale",
            model.rescale(level).time_ms(&config),
            TABLE5_GPU.rescale_ms,
            TABLE5_FAB_REPORTED.rescale_ms,
        ),
        (
            "Rotate",
            model.rotate(level).time_ms(&config),
            TABLE5_GPU.rotate_ms,
            TABLE5_FAB_REPORTED.rotate_ms,
        ),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "== Table 5: basic CKKS operation latency (ms), N = 2^16 =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<16} {:<16} {:<12} {:<18}",
        "Operation", "FAB model (ms)", "FAB paper (ms)", "GPU (ms)", "speedup vs GPU"
    )
    .unwrap();
    for (name, modelled, gpu, reported) in rows {
        writeln!(
            out,
            "{:<10} {:<16.3} {:<16.3} {:<12.3} {:<18.2}",
            name,
            modelled,
            reported,
            gpu,
            gpu / modelled
        )
        .unwrap();
    }
    out
}

fn table6() -> String {
    let config = FabConfig::alveo_u280();
    let model = OpCostModel::new(config, CkksParams::heax_comparison());
    let ntt = model.ntt_throughput_ops();
    let mult = model.multiply_throughput_ops();
    let mut out = String::new();
    writeln!(
        out,
        "== Table 6: throughput (ops/s) vs HEAX, N = 2^14, log Q = 438 =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<16} {:<16} {:<12} {:<18}",
        "Operation", "FAB model", "FAB paper", "HEAX", "speedup vs HEAX"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<16.0} {:<16.0} {:<12.0} {:<18.2}",
        "NTT",
        ntt,
        TABLE6_FAB_REPORTED.ntt_ops_per_s,
        TABLE6_HEAX.ntt_ops_per_s,
        ntt / TABLE6_HEAX.ntt_ops_per_s
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<16.0} {:<16.0} {:<12.0} {:<18.2}",
        "Mult",
        mult,
        TABLE6_FAB_REPORTED.mult_ops_per_s,
        TABLE6_HEAX.mult_ops_per_s,
        mult / TABLE6_HEAX.mult_ops_per_s
    )
    .unwrap();
    out
}

fn table7() -> String {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let boot = bootstrap_cost(&config, &params, params.fft_iter);
    let amortized = amortized_mult_time_us(
        &config,
        &params,
        &boot,
        params.levels_after_bootstrap(),
        params.slot_count(),
    );
    let mut out = String::new();
    writeln!(
        out,
        "== Table 7: fully-packed bootstrapping, amortized mult time per slot =="
    )
    .unwrap();
    writeln!(
        out,
        "modelled FAB: T_boot = {:.1} ms, levels after = {}, slots = 2^15, amortized = {:.3} us/slot",
        boot.time_ms(&config),
        params.levels_after_bootstrap(),
        amortized
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:<12} {:<8} {:<14} {:<22} {:<22}",
        "Work",
        "Freq (GHz)",
        "Slots",
        "Time (us)",
        "FAB-model speedup(t)",
        "FAB-model speedup(cyc)"
    )
    .unwrap();
    for row in table7_bootstrapping() {
        let speedup_time = row.amortized_mult_us / amortized;
        let speedup_cycles = speedup_time * row.freq_ghz / 0.3;
        writeln!(
            out,
            "{:<16} {:<12} {:<8} {:<14.4} {:<22.2} {:<22.2}",
            row.name,
            row.freq_ghz,
            if row.log_slots > 0 {
                format!("2^{}", row.log_slots)
            } else {
                "-".into()
            },
            row.amortized_mult_us,
            speedup_time,
            speedup_cycles
        )
        .unwrap();
    }
    out
}

fn table8() -> String {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let breakdown = lr_training_time_s(&config, &params, &HELR_TASK, 8, 0.012);
    let mut out = String::new();
    writeln!(
        out,
        "== Table 8: LR training, average time per iteration (sparsely packed) =="
    )
    .unwrap();
    writeln!(
        out,
        "modelled FAB-1 = {:.3} s, FAB-2 = {:.3} s ({} data ciphertexts, parallel {:.3} s, serial {:.3} s, comm {:.3} s)",
        breakdown.fab1_s,
        breakdown.fab2_s,
        breakdown.data_ciphertexts,
        breakdown.parallel_s,
        breakdown.serial_s,
        breakdown.communication_s
    )
    .unwrap();
    writeln!(
        out,
        "{:<18} {:<12} {:<22} {:<24}",
        "Work", "Time (s)", "FAB-2-model speedup(t)", "FAB-2-model speedup(cyc)"
    )
    .unwrap();
    for row in table8_lr_training() {
        let speedup = row.seconds_per_iteration / breakdown.fab2_s;
        writeln!(
            out,
            "{:<18} {:<12.3} {:<22.2} {:<24.2}",
            row.name,
            row.seconds_per_iteration,
            speedup,
            speedup * row.freq_ghz / 0.3
        )
        .unwrap();
    }
    out
}

fn leveled() -> String {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let breakdown = lr_training_time_s(&config, &params, &HELR_TASK, 8, 0.012);
    let mut out = String::new();
    writeln!(
        out,
        "== Section 5.5: bootstrapped FHE vs leveled FHE (client-aided) =="
    )
    .unwrap();
    writeln!(
        out,
        "FAB-1 full LR iteration (incl. bootstrapping, modelled): {:.3} s",
        breakdown.fab1_s
    )
    .unwrap();
    writeln!(
        out,
        "leveled approach, client-side re-encryption alone (2.8 GHz CPU): {:.3} s",
        LEVELED_FHE_CLIENT_ENCRYPT_S
    )
    .unwrap();
    writeln!(
        out,
        "leveled approach additionally leaks intermediate values and adds cloud + network time"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_renders_nonempty_output() {
        for experiment in Experiment::all() {
            let rendered = render_experiment(experiment);
            assert!(
                rendered.lines().count() >= 2,
                "{experiment:?} produced too little output"
            );
            assert!(rendered.starts_with("=="));
        }
    }

    #[test]
    fn experiment_parsing_roundtrip() {
        for (name, expected) in [
            ("table2", Experiment::Table2),
            ("Figure1", Experiment::Figure1),
            ("FIGURE2", Experiment::Figure2),
            ("table3", Experiment::Table3),
            ("table4", Experiment::Table4),
            ("table5", Experiment::Table5),
            ("table6", Experiment::Table6),
            ("table7", Experiment::Table7),
            ("table8", Experiment::Table8),
            ("leveled", Experiment::Leveled),
        ] {
            assert_eq!(Experiment::parse(name), Some(expected));
        }
        assert_eq!(Experiment::parse("table9"), None);
    }

    #[test]
    fn figure2_reports_bsgs_rotation_reduction() {
        let rendered = render_experiment(Experiment::Figure2);
        assert!(rendered.contains("CoeffToSlot key-switched rotations"));
        assert!(rendered.contains("per-diagonal"));
        // Every sweep point must show a real reduction (the last column is > 1).
        let reductions: Vec<f64> = rendered
            .lines()
            .skip_while(|l| !l.starts_with("fftIter"))
            .skip_while(|l| !l.contains("reduction"))
            .skip(1)
            .filter_map(|l| l.split_whitespace().nth(3)?.parse().ok())
            .collect();
        assert_eq!(reductions.len(), 6);
        assert!(reductions.iter().all(|&r| r > 1.5), "{reductions:?}");
    }

    #[test]
    fn table5_rows_show_fab_faster_than_gpu() {
        let rendered = render_experiment(Experiment::Table5);
        assert!(rendered.contains("Add"));
        assert!(rendered.contains("Rotate"));
        // The GPU column (2.96 ms for Mult) must be present.
        assert!(rendered.contains("2.96"));
    }

    #[test]
    fn table7_contains_all_baselines() {
        let rendered = render_experiment(Experiment::Table7);
        for name in ["Lattigo", "GPU-1", "GPU-2", "F1", "BTS-2", "FAB"] {
            assert!(rendered.contains(name), "missing {name}");
        }
    }

    #[test]
    fn render_all_contains_every_header() {
        let all = render_all();
        for header in [
            "Table 2",
            "Figure 1",
            "Figure 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "leveled FHE",
        ] {
            assert!(all.contains(header), "missing section {header}");
        }
    }
}
