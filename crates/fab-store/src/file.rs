//! The real filesystem backend: buffered appends, explicit `fsync`, parent-directory
//! fsync for durable metadata, and syscall counters so the durability bench can price
//! each [`SyncPolicy`](crate::SyncPolicy).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::{StorageBackend, StorageError};

/// Syscall counters for a [`FileBackend`] — what the fsync discipline actually costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileStats {
    /// Files created (open with truncate).
    pub creates: u64,
    /// Append calls (application-buffer writes; free until flushed).
    pub appends: u64,
    /// `write(2)` flushes of buffered appends.
    pub flushes: u64,
    /// File `fsync`s (`sync_data`).
    pub syncs: u64,
    /// Renames.
    pub renames: u64,
    /// Removals.
    pub removes: u64,
    /// Parent-directory `fsync`s.
    pub dir_syncs: u64,
}

/// One open file: the handle plus an application-side append buffer, so
/// [`StorageBackend::append`] costs nothing until [`StorageBackend::flush`] — the same
/// three-tier discipline [`SimDisk`](crate::SimDisk) models.
#[derive(Debug)]
struct OpenFile {
    handle: File,
    buffer: Vec<u8>,
}

/// Durable file storage rooted at a directory. File names are flat (no subdirectories),
/// which keeps "the parent directory" singular: one [`StorageBackend::sync_dir`] makes
/// every create / rename / remove so far durable.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
    open: BTreeMap<String, OpenFile>,
    ops: u64,
    stats: FileStats,
}

fn io_err(op: &'static str, path: &str, err: std::io::Error) -> StorageError {
    if err.kind() == std::io::ErrorKind::NotFound {
        StorageError::NotFound {
            path: path.to_string(),
        }
    } else {
        StorageError::Io {
            op,
            path: path.to_string(),
            reason: err.to_string(),
        }
    }
}

impl FileBackend {
    /// Opens a backend rooted at `root`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the directory cannot be created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StorageError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create_dir", &root.display().to_string(), e))?;
        Ok(Self {
            root,
            open: BTreeMap::new(),
            ops: 0,
            stats: FileStats::default(),
        })
    }

    /// Syscall counters so far.
    pub fn stats(&self) -> FileStats {
        self.stats
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn open_mut(&mut self, op: &'static str, name: &str) -> Result<&mut OpenFile, StorageError> {
        if !self.open.contains_key(name) {
            // Re-open an existing file for appends (e.g. after recovery picked it up).
            let path = self.path_of(name);
            let handle = OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| io_err(op, name, e))?;
            self.open.insert(
                name.to_string(),
                OpenFile {
                    handle,
                    buffer: Vec::new(),
                },
            );
        }
        Ok(self.open.get_mut(name).expect("inserted above"))
    }
}

impl StorageBackend for FileBackend {
    fn create(&mut self, name: &str) -> Result<(), StorageError> {
        self.ops += 1;
        self.stats.creates += 1;
        let path = self.path_of(name);
        let handle = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", name, e))?;
        self.open.insert(
            name.to_string(),
            OpenFile {
                handle,
                buffer: Vec::new(),
            },
        );
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.ops += 1;
        self.stats.appends += 1;
        let file = self.open_mut("append", name)?;
        file.buffer.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self, name: &str) -> Result<(), StorageError> {
        self.ops += 1;
        self.stats.flushes += 1;
        let file = self.open_mut("flush", name)?;
        if !file.buffer.is_empty() {
            let buffered = std::mem::take(&mut file.buffer);
            file.handle
                .write_all(&buffered)
                .map_err(|e| io_err("flush", name, e))?;
        }
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StorageError> {
        self.flush(name)?;
        self.ops += 1;
        self.stats.syncs += 1;
        let file = self.open_mut("sync", name)?;
        file.handle.sync_data().map_err(|e| io_err("sync", name, e))
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, StorageError> {
        // Reads must observe buffered appends; flush first if the file is open.
        if self.open.contains_key(name) {
            self.flush(name)?;
        }
        std::fs::read(self.path_of(name)).map_err(|e| io_err("read", name, e))
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.ops += 1;
        self.stats.removes += 1;
        self.open.remove(name);
        std::fs::remove_file(self.path_of(name)).map_err(|e| io_err("remove", name, e))
    }

    fn rename(&mut self, src: &str, dst: &str) -> Result<(), StorageError> {
        // Flush (not sync — the caller owns the discipline) so the renamed file holds
        // everything appended so far.
        if self.open.contains_key(src) {
            self.flush(src)?;
        }
        self.ops += 1;
        self.stats.renames += 1;
        self.open.remove(src);
        self.open.remove(dst);
        std::fs::rename(self.path_of(src), self.path_of(dst)).map_err(|e| io_err("rename", src, e))
    }

    fn sync_dir(&mut self) -> Result<(), StorageError> {
        self.ops += 1;
        self.stats.dir_syncs += 1;
        let dir = File::open(&self.root)
            .map_err(|e| io_err("sync_dir", &self.root.display().to_string(), e))?;
        dir.sync_all()
            .map_err(|e| io_err("sync_dir", &self.root.display().to_string(), e))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if let Ok(name) = entry.file_name().into_string() {
                    if name.starts_with(prefix) {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        names
    }

    fn op_count(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_atomic;

    fn temp_root(tag: &str) -> PathBuf {
        let pid = std::process::id();
        std::env::temp_dir().join(format!("fab-store-{tag}-{pid}"))
    }

    #[test]
    fn append_flush_sync_read_roundtrip() {
        let root = temp_root("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        let mut fs = FileBackend::open(&root).unwrap();
        fs.create("seg-0.wal").unwrap();
        fs.append("seg-0.wal", b"hello ").unwrap();
        fs.append("seg-0.wal", b"journal").unwrap();
        assert_eq!(fs.read("seg-0.wal").unwrap(), b"hello journal");
        fs.sync("seg-0.wal").unwrap();
        fs.sync_dir().unwrap();

        // A fresh backend (new process) sees the same bytes and can keep appending.
        let mut fresh = FileBackend::open(&root).unwrap();
        assert_eq!(fresh.read("seg-0.wal").unwrap(), b"hello journal");
        fresh.append("seg-0.wal", b"!").unwrap();
        fresh.sync("seg-0.wal").unwrap();
        assert_eq!(fresh.read("seg-0.wal").unwrap(), b"hello journal!");
        assert_eq!(fresh.list("seg-"), vec!["seg-0.wal".to_string()]);

        let stats = fresh.stats();
        assert!(stats.syncs == 1 && stats.appends == 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn atomic_write_replaces_and_missing_files_are_not_found() {
        let root = temp_root("atomic");
        let _ = std::fs::remove_dir_all(&root);
        let mut fs = FileBackend::open(&root).unwrap();
        write_atomic(&mut fs, "model.ckpt", b"v1").unwrap();
        write_atomic(&mut fs, "model.ckpt", b"v2-longer").unwrap();
        assert_eq!(fs.read("model.ckpt").unwrap(), b"v2-longer");
        assert!(!fs.exists("model.ckpt.tmp"), "temp name must not linger");
        assert!(matches!(
            fs.read("absent.ckpt").unwrap_err(),
            StorageError::NotFound { .. }
        ));
        assert!(matches!(
            fs.remove("absent.ckpt").unwrap_err(),
            StorageError::NotFound { .. }
        ));
        assert!(fs.stats().dir_syncs >= 2, "atomic writes fsync the dir");
        let _ = std::fs::remove_dir_all(&root);
    }
}
