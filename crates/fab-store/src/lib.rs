//! Durable storage backends for the serving journal and training checkpoints.
//!
//! PR 9 made the *formats* crash-safe byte-for-byte: journal records and checkpoint blobs
//! are validated blobs that recover a clean prefix or fail typed. What remained open (see
//! ROADMAP) is the layer underneath — `std::fs::write` + `rename` with no fsync is not
//! durable, so a power loss could still lose everything the format protects. This crate
//! closes that gap and, just as importantly, makes the claim *testable*:
//!
//! * [`StorageBackend`] is the seam: append / flush / sync / rename / directory-sync over a
//!   flat file namespace. Everything above it (the segmented journal, checkpoint writes)
//!   is written once against the trait.
//! * [`FileBackend`] is the real thing: buffered appends, explicit `fsync` (`sync_data`) on
//!   [`StorageBackend::sync`], and parent-directory fsync on [`StorageBackend::sync_dir`]
//!   so renames and creations are durable — with syscall counters the durability bench
//!   prices.
//! * [`SimDisk`] is a deterministic disk model with the **true crash surface**: data that
//!   was appended but never synced can be lost wholesale, torn mid-write (partial-sector),
//!   or survive *out of order* (a later unsynced write persists while an earlier one does
//!   not, leaving a zero-filled hole); directory operations that were never followed by a
//!   [`StorageBackend::sync_dir`] may or may not have reached the disk. A seeded
//!   enumeration ([`SimDisk::arm_crash`] + [`SimDisk::crash_surface`]) kills the disk at
//!   every syscall boundary and draws reproducible post-crash states, so recovery code is
//!   exercised against every interleaving a real power loss could produce — not just the
//!   friendly ones.
//! * [`SyncPolicy`] names the fsync discipline a writer runs under (every append, every
//!   N appends, group commit by interval), and documents exactly what each policy does and
//!   does not guarantee under power loss.
//!
//! The crash model is deliberately adversarial but physical: **synced bytes never change**,
//! and a rename is atomic per name (a crash sees the old target or the new one, never a
//! half-name). Everything unsynced is fair game.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod file;
mod sim;

use std::fmt;

pub use file::{FileBackend, FileStats};
pub use sim::{CrashSurface, MemBackend, SharedDisk, SimDisk, SimStats};

/// A storage-layer failure, typed by what it means for the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A real filesystem operation failed (permissions, disk full, unexpected OS error).
    Io {
        /// The backend operation that failed.
        op: &'static str,
        /// The file (or directory) the operation targeted.
        path: String,
        /// The underlying error, rendered.
        reason: String,
    },
    /// The file does not exist. Distinct from [`StorageError::Io`] so callers can treat a
    /// missing file as a state ("no checkpoint yet") rather than a fault.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// The simulated disk's armed crash point fired (or had already fired): the operation
    /// did not happen and no further operation will. The harness inspects the disk's crash
    /// surface to see what survived.
    Crashed {
        /// The operation that was refused.
        op: &'static str,
        /// The file the operation targeted.
        path: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, path, reason } => {
                write!(f, "storage {op} on {path} failed: {reason}")
            }
            StorageError::NotFound { path } => write!(f, "storage file {path} not found"),
            StorageError::Crashed { op, path } => {
                write!(f, "simulated disk crashed at {op} on {path}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Whether this is the simulated-disk crash latch (the harness treats it as process
    /// death, not as an error to handle).
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::Crashed { .. })
    }
}

/// The durable-storage seam: a flat namespace of append-only files plus the directory
/// operations (create / rename / remove) that manage them.
///
/// # Durability contract
///
/// * [`append`](Self::append) buffers; the bytes are not even guaranteed to reach the OS.
/// * [`flush`](Self::flush) pushes buffered appends to the OS (the `write(2)` boundary).
///   Flushed-but-unsynced data sits in the page cache: a process crash keeps it, a power
///   loss may drop it, **tear it mid-write, or apply it out of order**.
/// * [`sync`](Self::sync) is `fsync`: everything appended to the file so far survives any
///   later crash, in order, byte-for-byte.
/// * [`create`](Self::create) / [`rename`](Self::rename) / [`remove`](Self::remove) are
///   directory-metadata operations; they are visible to this process immediately but only
///   durable after [`sync_dir`](Self::sync_dir) (the parent-directory fsync POSIX
///   requires). A rename is atomic per name even across a crash: the name resolves to the
///   old file or the new one, never to a torn mixture.
///
/// [`op_count`](Self::op_count) numbers the syscall boundaries; the [`SimDisk`]
/// implementation can be armed to crash at any of them, which is how the crash-sweep
/// suites enumerate every kill site.
pub trait StorageBackend: fmt::Debug {
    /// Creates `path` empty (truncating an existing file) and opens it for appends.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on filesystem failure; [`StorageError::Crashed`] once a
    /// simulated crash has fired.
    fn create(&mut self, path: &str) -> Result<(), StorageError>;

    /// Appends bytes to `path` (buffered — not durable, possibly not even in the OS yet).
    ///
    /// # Errors
    ///
    /// [`StorageError::NotFound`] if the file was never created; [`StorageError::Io`] /
    /// [`StorageError::Crashed`] as for [`Self::create`].
    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// Pushes buffered appends to the OS (`write(2)`): survives a process crash, remains
    /// at the mercy of a power loss.
    ///
    /// # Errors
    ///
    /// As for [`Self::append`].
    fn flush(&mut self, path: &str) -> Result<(), StorageError>;

    /// `fsync`: all bytes appended to `path` so far become durable.
    ///
    /// # Errors
    ///
    /// As for [`Self::append`].
    fn sync(&mut self, path: &str) -> Result<(), StorageError>;

    /// Reads the file's current contents (buffered appends included).
    ///
    /// # Errors
    ///
    /// As for [`Self::append`].
    fn read(&mut self, path: &str) -> Result<Vec<u8>, StorageError>;

    /// Whether `path` currently exists.
    fn exists(&self, path: &str) -> bool;

    /// Removes `path` (directory op: durable after [`Self::sync_dir`]).
    ///
    /// # Errors
    ///
    /// As for [`Self::append`].
    fn remove(&mut self, path: &str) -> Result<(), StorageError>;

    /// Atomically renames `src` onto `dst`, replacing `dst` if it exists (directory op:
    /// durable after [`Self::sync_dir`]).
    ///
    /// # Errors
    ///
    /// As for [`Self::append`].
    fn rename(&mut self, src: &str, dst: &str) -> Result<(), StorageError>;

    /// fsyncs the directory: every create / rename / remove so far becomes durable.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] / [`StorageError::Crashed`].
    fn sync_dir(&mut self) -> Result<(), StorageError>;

    /// Sorted list of existing files whose names start with `prefix`.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Syscall boundaries crossed so far (mutating and syncing operations; reads and
    /// metadata probes are free). The crash sweep's axis.
    fn op_count(&self) -> u64;
}

/// When a journal writer fsyncs. The policy is a pure decision function over appends and a
/// caller-supplied clock, so the same discipline runs identically over [`FileBackend`],
/// [`SimDisk`] and the fault harness's deterministic time.
///
/// What survives a power loss, by policy (a process crash without power loss keeps
/// everything flushed regardless):
///
/// | policy | guarantees | may lose |
/// |---|---|---|
/// | `Always` | every acknowledged record | nothing acknowledged |
/// | `EveryN(n)` | records up to the last group boundary | up to `n − 1` trailing records |
/// | `IntervalUs(us)` | records synced ≤ `us` ago | the last `us` microseconds of records |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record: an acknowledged record is a durable record.
    Always,
    /// Group commit by count: fsync after every `n` appended records (and at rotation or
    /// an explicit sync). `EveryN(1)` is `Always`; large `n` approximates "never".
    EveryN(u64),
    /// Group commit by time: fsync when at least this many microseconds have passed since
    /// the last sync, measured on the caller's clock at append time.
    IntervalUs(u64),
}

impl SyncPolicy {
    /// Whether a writer should fsync now, given the records appended since the last sync
    /// (this append included) and the caller's clock.
    pub fn should_sync(self, appends_since_sync: u64, last_sync_us: u64, now_us: u64) -> bool {
        match self {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => appends_since_sync >= n.max(1),
            SyncPolicy::IntervalUs(us) => now_us.saturating_sub(last_sync_us) >= us,
        }
    }

    /// A short stable name for bench rows and logs.
    pub fn label(self) -> String {
        match self {
            SyncPolicy::Always => "always".to_string(),
            SyncPolicy::EveryN(n) => format!("every_{n}"),
            SyncPolicy::IntervalUs(us) => format!("interval_{us}us"),
        }
    }
}

/// Writes `bytes` to `path` atomically *and durably* through a backend: create a temporary
/// sibling, append, flush, **fsync the temp file**, rename over `path`, **fsync the
/// directory**. This is the full discipline `rename`-based atomicity requires — skipping
/// the temp-file sync lets a power loss surface the new name pointing at torn or zero
/// bytes (the [`SimDisk`] crash sweep in `fab-lr` proves exactly that failure).
///
/// # Errors
///
/// Propagates the backend's [`StorageError`]; on error `path` is either untouched or
/// already fully replaced, never torn.
pub fn write_atomic(
    backend: &mut dyn StorageBackend,
    path: &str,
    bytes: &[u8],
) -> Result<(), StorageError> {
    let tmp = format!("{path}.tmp");
    backend.create(&tmp)?;
    backend.append(&tmp, bytes)?;
    backend.flush(&tmp)?;
    backend.sync(&tmp)?;
    backend.rename(&tmp, path)?;
    backend.sync_dir()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_policy_decisions() {
        assert!(SyncPolicy::Always.should_sync(1, 0, 0));
        assert!(!SyncPolicy::EveryN(4).should_sync(3, 0, 0));
        assert!(SyncPolicy::EveryN(4).should_sync(4, 0, 0));
        assert!(SyncPolicy::EveryN(0).should_sync(1, 0, 0), "0 clamps to 1");
        assert!(!SyncPolicy::IntervalUs(100).should_sync(9, 50, 149));
        assert!(SyncPolicy::IntervalUs(100).should_sync(1, 50, 150));
        assert_eq!(SyncPolicy::EveryN(8).label(), "every_8");
        assert_eq!(SyncPolicy::IntervalUs(500).label(), "interval_500us");
    }

    #[test]
    fn storage_error_renders_and_classifies() {
        let crash = StorageError::Crashed {
            op: "append",
            path: "seg-1.wal".into(),
        };
        assert!(crash.is_crash());
        assert!(crash.to_string().contains("crashed at append"));
        let missing = StorageError::NotFound {
            path: "x.ckpt".into(),
        };
        assert!(!missing.is_crash());
        assert!(missing.to_string().contains("not found"));
    }
}
