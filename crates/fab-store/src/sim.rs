//! A deterministic disk model with the true crash surface.
//!
//! Testing durability against "the file was truncated" is not enough: a power loss can
//! drop data that was written but never fsynced, tear an individual write mid-sector, and
//! persist a *later* unsynced write while dropping an earlier one (filesystems reorder
//! dirty pages), leaving a zero-filled hole. Directory operations (create / rename /
//! remove) have their own durability: visible immediately, on disk only after the parent
//! directory is fsynced. [`SimDisk`] models exactly this, deterministically:
//!
//! * Three data tiers per file — an **application buffer** (appends before
//!   [`flush`](crate::StorageBackend::flush); always lost at a crash), **flushed units**
//!   (each `flush` emits one write unit into the "page cache"; at a crash each unit
//!   independently survives, is dropped, or is torn to a prefix), and a **synced prefix**
//!   ([`sync`](crate::StorageBackend::sync) promotes everything; synced bytes never
//!   change).
//! * A **live** and a **durable** namespace — directory ops update the live view;
//!   [`sync_dir`](crate::StorageBackend::sync_dir) copies it to the durable view. At a
//!   crash each name whose binding differs between the views independently keeps either
//!   one (a rename is atomic per name: old target or new, never a torn mixture).
//! * An **op counter** numbering every syscall boundary. [`SimDisk::arm_crash`] kills the
//!   disk immediately *before* the n-th operation: that operation and everything after it
//!   fail with [`StorageError::Crashed`], exactly like a machine losing power mid-run.
//!   Sweeping `n` over `0..op_count()` of an unarmed reference run enumerates every kill
//!   site.
//! * [`SimDisk::crash_surface`] draws a seeded post-crash disk: same seed, same surface,
//!   on every platform. Enumerating a few seeds per kill site covers drop / tear /
//!   reorder combinations without a combinatorial explosion.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use crate::{StorageBackend, StorageError};

/// One flushed-but-unsynced write: `bytes` logically live at `offset` in the file.
#[derive(Debug, Clone)]
struct WriteUnit {
    offset: usize,
    bytes: Vec<u8>,
}

/// Per-file content state across the three durability tiers.
#[derive(Debug, Clone, Default)]
struct FileData {
    /// Appends not yet flushed: lost wholesale at any crash.
    buffer: Vec<u8>,
    /// Flushed content (synced prefix + unsynced units, in write order).
    cached: Vec<u8>,
    /// Length of the durable prefix of `cached`.
    synced_len: usize,
    /// Flushed units beyond `synced_len`, individually at risk.
    units: Vec<WriteUnit>,
}

impl FileData {
    fn logical(&self) -> Vec<u8> {
        let mut out = self.cached.clone();
        out.extend_from_slice(&self.buffer);
        out
    }
}

/// Syscall counters for the simulated disk (the durability bench reports the same shape
/// for [`FileBackend`](crate::FileBackend)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Files created.
    pub creates: u64,
    /// Append calls.
    pub appends: u64,
    /// Flush calls.
    pub flushes: u64,
    /// File fsyncs.
    pub syncs: u64,
    /// Renames.
    pub renames: u64,
    /// Removals.
    pub removes: u64,
    /// Directory fsyncs.
    pub dir_syncs: u64,
}

/// What a seeded crash draw did to the unsynced state — tests assert these to prove the
/// model actually exercises loss, tearing and reordering rather than quietly keeping
/// everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashSurface {
    /// Unsynced write units dropped entirely.
    pub dropped_units: u64,
    /// Unsynced write units torn to a strict prefix.
    pub torn_units: u64,
    /// Unsynced write units that survived intact (possibly out of order relative to
    /// dropped earlier ones).
    pub survived_units: u64,
    /// Application-buffer bytes lost (never flushed; always lost).
    pub lost_buffer_bytes: u64,
    /// Directory bindings that reverted to their durable value.
    pub reverted_names: u64,
}

/// The deterministic simulated disk. See the module docs for the crash model.
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    files: Vec<FileData>,
    live: BTreeMap<String, usize>,
    durable: BTreeMap<String, usize>,
    ops: u64,
    crash_at: Option<u64>,
    crashed: bool,
    stats: SimStats,
}

impl SimDisk {
    /// An empty, healthy disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the crash: the disk dies immediately before its `at_op`-th syscall (0-based,
    /// counted by [`StorageBackend::op_count`]). Arming with a value the run never reaches
    /// is a no-op (the sweep's "ran to completion" case).
    pub fn arm_crash(&mut self, at_op: u64) {
        self.crash_at = Some(at_op);
    }

    /// Whether the armed crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Syscall counters so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The syscall gate: refuses everything once crashed, fires an armed crash point, and
    /// advances the op counter.
    fn syscall(&mut self, op: &'static str, path: &str) -> Result<(), StorageError> {
        if self.crashed {
            return Err(StorageError::Crashed {
                op,
                path: path.to_string(),
            });
        }
        if self.crash_at == Some(self.ops) {
            self.crashed = true;
            return Err(StorageError::Crashed {
                op,
                path: path.to_string(),
            });
        }
        self.ops += 1;
        Ok(())
    }

    fn file_mut(&mut self, op: &'static str, path: &str) -> Result<&mut FileData, StorageError> {
        match self.live.get(path) {
            Some(&id) => Ok(&mut self.files[id]),
            None => Err(StorageError::NotFound {
                path: format!("{path} ({op})"),
            }),
        }
    }

    /// Draws the seeded post-crash state: a fresh, healthy disk holding what survived,
    /// plus a [`CrashSurface`] summary of what the draw did. Usable at any moment — it is
    /// "what would the platters hold if power failed right now".
    ///
    /// The draw: every name bound differently in the live and durable namespaces keeps
    /// either binding (independently, p = 1/2); every unsynced flushed unit survives
    /// intact (p = 1/2), is dropped, or — if it survives — is torn to a strict prefix
    /// (p = 1/4); gaps left by dropped units under surviving later ones read as zeros,
    /// exactly like a sparse file extended by an out-of-order page write-back. Synced
    /// bytes and dir-synced bindings always survive. Application buffers never do.
    pub fn crash_surface(&self, seed: u64) -> (SimDisk, CrashSurface) {
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let mut summary = CrashSurface::default();

        // Namespace draw, name by name in sorted order (determinism).
        let mut names: Vec<&String> = self.live.keys().chain(self.durable.keys()).collect();
        names.sort();
        names.dedup();
        let mut surfaced: BTreeMap<String, usize> = BTreeMap::new();
        for name in names {
            let live = self.live.get(name);
            let durable = self.durable.get(name);
            // The rng is drawn only for names whose binding was unsynced at the crash
            // (short-circuit), so adding synced files never shifts another file's draw.
            let keep = if live == durable || rng.gen_bool(0.5) {
                live
            } else {
                summary.reverted_names += 1;
                durable
            };
            if let Some(&id) = keep {
                surfaced.insert(name.clone(), id);
            }
        }

        // Content draw per referenced file id (drawn once per id so two names surfacing
        // the same file agree, like two hard links would).
        let mut contents: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        for &id in surfaced.values() {
            if contents.contains_key(&id) {
                continue;
            }
            let data = &self.files[id];
            let mut bytes = data.cached[..data.synced_len].to_vec();
            for unit in &data.units {
                if !rng.gen_bool(0.5) {
                    summary.dropped_units += 1;
                    continue;
                }
                let kept = if rng.gen_bool(0.25) && unit.bytes.len() > 1 {
                    summary.torn_units += 1;
                    rng.gen_range(1..unit.bytes.len())
                } else {
                    summary.survived_units += 1;
                    unit.bytes.len()
                };
                let end = unit.offset + kept;
                if bytes.len() < unit.offset {
                    bytes.resize(unit.offset, 0); // hole from a dropped earlier unit
                }
                if bytes.len() < end {
                    bytes.resize(end, 0);
                }
                bytes[unit.offset..end].copy_from_slice(&unit.bytes[..kept]);
            }
            summary.lost_buffer_bytes += data.buffer.len() as u64;
            contents.insert(id, bytes);
        }

        let mut disk = SimDisk::new();
        for (name, id) in surfaced {
            let file_id = disk.files.len();
            let bytes = contents[&id].clone();
            disk.files.push(FileData {
                buffer: Vec::new(),
                synced_len: bytes.len(),
                cached: bytes,
                units: Vec::new(),
            });
            disk.live.insert(name.clone(), file_id);
            disk.durable.insert(name, file_id);
        }
        (disk, summary)
    }
}

impl StorageBackend for SimDisk {
    fn create(&mut self, path: &str) -> Result<(), StorageError> {
        self.syscall("create", path)?;
        self.stats.creates += 1;
        let id = self.files.len();
        self.files.push(FileData::default());
        self.live.insert(path.to_string(), id);
        Ok(())
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.syscall("append", path)?;
        self.stats.appends += 1;
        let file = self.file_mut("append", path)?;
        file.buffer.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self, path: &str) -> Result<(), StorageError> {
        self.syscall("flush", path)?;
        self.stats.flushes += 1;
        let file = self.file_mut("flush", path)?;
        if !file.buffer.is_empty() {
            let unit = WriteUnit {
                offset: file.cached.len(),
                bytes: std::mem::take(&mut file.buffer),
            };
            file.cached.extend_from_slice(&unit.bytes);
            file.units.push(unit);
        }
        Ok(())
    }

    fn sync(&mut self, path: &str) -> Result<(), StorageError> {
        self.syscall("sync", path)?;
        self.stats.syncs += 1;
        let file = self.file_mut("sync", path)?;
        // fsync implies flushing the application buffer first.
        if !file.buffer.is_empty() {
            let buffered = std::mem::take(&mut file.buffer);
            file.cached.extend_from_slice(&buffered);
        }
        file.synced_len = file.cached.len();
        file.units.clear();
        Ok(())
    }

    fn read(&mut self, path: &str) -> Result<Vec<u8>, StorageError> {
        if self.crashed {
            return Err(StorageError::Crashed {
                op: "read",
                path: path.to_string(),
            });
        }
        match self.live.get(path) {
            Some(&id) => Ok(self.files[id].logical()),
            None => Err(StorageError::NotFound {
                path: path.to_string(),
            }),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.live.contains_key(path)
    }

    fn remove(&mut self, path: &str) -> Result<(), StorageError> {
        self.syscall("remove", path)?;
        self.stats.removes += 1;
        if self.live.remove(path).is_none() {
            return Err(StorageError::NotFound {
                path: path.to_string(),
            });
        }
        Ok(())
    }

    fn rename(&mut self, src: &str, dst: &str) -> Result<(), StorageError> {
        self.syscall("rename", src)?;
        self.stats.renames += 1;
        let Some(id) = self.live.remove(src) else {
            return Err(StorageError::NotFound {
                path: src.to_string(),
            });
        };
        self.live.insert(dst.to_string(), id);
        Ok(())
    }

    fn sync_dir(&mut self) -> Result<(), StorageError> {
        self.syscall("sync_dir", "<dir>")?;
        self.stats.dir_syncs += 1;
        self.durable = self.live.clone();
        Ok(())
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.live
            .keys()
            .filter(|name| name.starts_with(prefix))
            .cloned()
            .collect()
    }

    fn op_count(&self) -> u64 {
        self.ops
    }
}

/// Backwards-compatible alias: an unarmed [`SimDisk`] is exactly a deterministic
/// in-memory backend.
pub type MemBackend = SimDisk;

/// A cloneable handle to one [`SimDisk`]: the harness hands one clone (boxed as a
/// [`StorageBackend`]) to the component under test and keeps another to arm crash points
/// and draw the crash surface after the component "dies". All clones see the same disk.
#[derive(Debug, Clone, Default)]
pub struct SharedDisk(std::sync::Arc<std::sync::Mutex<SimDisk>>);

impl SharedDisk {
    /// A handle to a fresh, healthy disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing disk (e.g. a previously drawn crash surface).
    pub fn from_disk(disk: SimDisk) -> Self {
        Self(std::sync::Arc::new(std::sync::Mutex::new(disk)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimDisk> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// See [`SimDisk::arm_crash`].
    pub fn arm_crash(&self, at_op: u64) {
        self.lock().arm_crash(at_op);
    }

    /// See [`SimDisk::has_crashed`].
    pub fn has_crashed(&self) -> bool {
        self.lock().has_crashed()
    }

    /// See [`SimDisk::stats`].
    pub fn stats(&self) -> SimStats {
        self.lock().stats()
    }

    /// A deep copy of the disk's current state.
    pub fn snapshot(&self) -> SimDisk {
        self.lock().clone()
    }

    /// See [`SimDisk::crash_surface`].
    pub fn crash_surface(&self, seed: u64) -> (SimDisk, CrashSurface) {
        self.lock().crash_surface(seed)
    }
}

impl StorageBackend for SharedDisk {
    fn create(&mut self, path: &str) -> Result<(), StorageError> {
        self.lock().create(path)
    }
    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.lock().append(path, bytes)
    }
    fn flush(&mut self, path: &str) -> Result<(), StorageError> {
        self.lock().flush(path)
    }
    fn sync(&mut self, path: &str) -> Result<(), StorageError> {
        self.lock().sync(path)
    }
    fn read(&mut self, path: &str) -> Result<Vec<u8>, StorageError> {
        self.lock().read(path)
    }
    fn exists(&self, path: &str) -> bool {
        self.lock().exists(path)
    }
    fn remove(&mut self, path: &str) -> Result<(), StorageError> {
        self.lock().remove(path)
    }
    fn rename(&mut self, src: &str, dst: &str) -> Result<(), StorageError> {
        self.lock().rename(src, dst)
    }
    fn sync_dir(&mut self) -> Result<(), StorageError> {
        self.lock().sync_dir()
    }
    fn list(&self, prefix: &str) -> Vec<String> {
        self.lock().list(prefix)
    }
    fn op_count(&self) -> u64 {
        self.lock().op_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_disciplined(disk: &mut SimDisk, path: &str, bytes: &[u8]) {
        disk.create(path).unwrap();
        disk.append(path, bytes).unwrap();
        disk.flush(path).unwrap();
        disk.sync(path).unwrap();
        disk.sync_dir().unwrap();
    }

    #[test]
    fn synced_bytes_survive_every_seed() {
        let mut disk = SimDisk::new();
        write_disciplined(&mut disk, "a.log", b"durable");
        disk.append("a.log", b" buffered-only").unwrap();
        for seed in 0..64 {
            let (surface, summary) = disk.crash_surface(seed);
            let mut surface = surface;
            assert_eq!(surface.read("a.log").unwrap(), b"durable");
            assert_eq!(summary.lost_buffer_bytes, b" buffered-only".len() as u64);
        }
    }

    #[test]
    fn unsynced_units_drop_tear_and_reorder() {
        let mut disk = SimDisk::new();
        write_disciplined(&mut disk, "a.log", b"SYNCED");
        for unit in [b"AAAA".as_slice(), b"BBBB", b"CCCC"] {
            disk.append("a.log", unit).unwrap();
            disk.flush("a.log").unwrap();
        }
        let mut saw_drop = false;
        let mut saw_tear = false;
        let mut saw_reorder = false;
        for seed in 0..256 {
            let (mut surface, summary) = disk.crash_surface(seed);
            let bytes = surface.read("a.log").unwrap();
            assert!(bytes.starts_with(b"SYNCED"), "synced prefix immutable");
            saw_drop |= summary.dropped_units > 0;
            saw_tear |= summary.torn_units > 0;
            // Reorder: a later unit survived over a dropped earlier one — visible as a
            // zero-filled hole before surviving bytes.
            let tail = &bytes[b"SYNCED".len()..];
            saw_reorder |= tail.contains(&0u8) && tail.iter().any(|&b| b != 0);
        }
        assert!(saw_drop, "no seed dropped a unit");
        assert!(saw_tear, "no seed tore a unit");
        assert!(saw_reorder, "no seed reordered units");
    }

    #[test]
    fn surfaces_are_reproducible_and_seed_sensitive() {
        let mut disk = SimDisk::new();
        write_disciplined(&mut disk, "a.log", b"base");
        for i in 0..8u8 {
            disk.append("a.log", &[i; 32]).unwrap();
            disk.flush("a.log").unwrap();
        }
        let (mut a, sa) = disk.crash_surface(7);
        let (mut b, sb) = disk.crash_surface(7);
        assert_eq!(a.read("a.log").unwrap(), b.read("a.log").unwrap());
        assert_eq!(sa, sb);
        let distinct = (0..32)
            .map(|seed| disk.crash_surface(seed).0.read("a.log").unwrap())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 1, "seeds must vary the surface");
    }

    #[test]
    fn unsynced_rename_may_revert_but_never_tears_a_name() {
        let mut disk = SimDisk::new();
        write_disciplined(&mut disk, "ckpt", b"OLD");
        disk.create("ckpt.tmp").unwrap();
        disk.append("ckpt.tmp", b"NEW!").unwrap();
        disk.flush("ckpt.tmp").unwrap();
        disk.sync("ckpt.tmp").unwrap();
        disk.rename("ckpt.tmp", "ckpt").unwrap(); // no sync_dir: at risk
        let mut saw_old = false;
        let mut saw_new = false;
        for seed in 0..64 {
            let (mut surface, _) = disk.crash_surface(seed);
            let bytes = surface.read("ckpt").expect("the name always resolves");
            match bytes.as_slice() {
                b"OLD" => saw_old = true,
                b"NEW!" => saw_new = true,
                other => panic!("torn name: {other:?}"),
            }
        }
        assert!(saw_old && saw_new, "both rename outcomes must be drawable");

        // After sync_dir the rename is pinned.
        disk.sync_dir().unwrap();
        for seed in 0..16 {
            let (mut surface, _) = disk.crash_surface(seed);
            assert_eq!(surface.read("ckpt").unwrap(), b"NEW!");
        }
    }

    #[test]
    fn armed_crash_fires_at_the_exact_op_and_latches() {
        let mut reference = SimDisk::new();
        write_disciplined(&mut reference, "a.log", b"x");
        let total = reference.op_count();
        assert_eq!(total, 5, "create+append+flush+sync+sync_dir");

        for at in 0..total {
            let mut disk = SimDisk::new();
            disk.arm_crash(at);
            let mut steps = 0u64;
            let result = (|| -> Result<(), StorageError> {
                disk.create("a.log")?;
                steps += 1;
                disk.append("a.log", b"x")?;
                steps += 1;
                disk.flush("a.log")?;
                steps += 1;
                disk.sync("a.log")?;
                steps += 1;
                disk.sync_dir()?;
                steps += 1;
                Ok(())
            })();
            assert!(result.unwrap_err().is_crash());
            assert_eq!(steps, at, "crash must fire before op {at}");
            assert!(disk.has_crashed());
            assert!(disk.append("a.log", b"y").unwrap_err().is_crash());
            assert!(disk.read("a.log").unwrap_err().is_crash());
        }

        // Arming past the end never fires.
        let mut disk = SimDisk::new();
        disk.arm_crash(total);
        write_disciplined(&mut disk, "a.log", b"x");
        assert!(!disk.has_crashed());
    }

    #[test]
    fn create_truncates_visibly_but_old_durable_content_can_resurface() {
        let mut disk = SimDisk::new();
        write_disciplined(&mut disk, "a.log", b"OLD");
        disk.create("a.log").unwrap(); // recreate, no sync_dir yet
        disk.append("a.log", b"N").unwrap();
        assert_eq!(disk.read("a.log").unwrap(), b"N");
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let (mut surface, _) = disk.crash_surface(seed);
            outcomes.insert(surface.read("a.log").unwrap());
        }
        assert!(
            outcomes.contains(b"OLD".as_slice()),
            "durable binding survives some draws"
        );
    }
}
