//! Error type for the math substrate.

use std::fmt;

/// Errors produced by the arithmetic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// The modulus does not satisfy a precondition (zero, too large, or not prime where required).
    InvalidModulus {
        /// The offending modulus value.
        modulus: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A ring degree was not a power of two or was out of the supported range.
    InvalidDegree {
        /// The offending degree.
        degree: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// No prime satisfying the requested constraints could be found.
    PrimeNotFound {
        /// Requested bit size.
        bits: u32,
        /// Required NTT degree (q ≡ 1 mod 2·degree).
        degree: usize,
    },
    /// A primitive root of unity of the requested order does not exist modulo the prime.
    NoPrimitiveRoot {
        /// The modulus searched.
        modulus: u64,
        /// The requested order.
        order: u64,
    },
    /// An element had no inverse modulo the modulus.
    NotInvertible {
        /// The non-invertible element.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// A Galois element was invalid (even, or out of range) for the ring degree.
    InvalidGaloisElement {
        /// The offending Galois element.
        element: u64,
        /// The ring degree.
        degree: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::InvalidModulus { modulus, reason } => {
                write!(f, "invalid modulus {modulus}: {reason}")
            }
            MathError::InvalidDegree { degree, reason } => {
                write!(f, "invalid ring degree {degree}: {reason}")
            }
            MathError::PrimeNotFound { bits, degree } => {
                write!(f, "no {bits}-bit NTT prime found for degree {degree}")
            }
            MathError::NoPrimitiveRoot { modulus, order } => {
                write!(f, "no primitive root of order {order} modulo {modulus}")
            }
            MathError::NotInvertible { value, modulus } => {
                write!(f, "element {value} is not invertible modulo {modulus}")
            }
            MathError::InvalidGaloisElement { element, degree } => {
                write!(
                    f,
                    "invalid galois element {element} for ring degree {degree}"
                )
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            MathError::InvalidModulus {
                modulus: 0,
                reason: "zero",
            },
            MathError::InvalidDegree {
                degree: 3,
                reason: "not a power of two",
            },
            MathError::PrimeNotFound {
                bits: 54,
                degree: 1 << 16,
            },
            MathError::NoPrimitiveRoot {
                modulus: 17,
                order: 32,
            },
            MathError::NotInvertible {
                value: 4,
                modulus: 8,
            },
            MathError::InvalidGaloisElement {
                element: 2,
                degree: 8,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
