//! Galois automorphisms of the ring `Z_q[x]/(x^N + 1)` and index maps for the FAB
//! automorph unit.
//!
//! `Rotate(k)` in CKKS is implemented as the automorphism `x → x^{5^k}` followed by a key
//! switch, and `Conjugate` uses `x → x^{2N-1}`. The FAB automorph unit (Section 4.1) reads a
//! polynomial from on-chip memory and writes it to the register file in permuted order using
//! the closed-form index map of Equation (4); because only ~60 distinct rotation indices occur
//! in bootstrapping, the powers of 5 are precomputed.

use crate::{MathError, Modulus, Result};

/// Returns the Galois element `5^steps mod 2N` implementing a rotation by `steps` slots.
///
/// Negative rotations are expressed by passing `steps` modulo `N/2` (the slot count).
///
/// ```
/// let g = fab_math::galois_element_for_rotation(1 << 4, 1);
/// assert_eq!(g, 5);
/// ```
pub fn galois_element_for_rotation(degree: usize, steps: usize) -> u64 {
    let m = 2 * degree as u64;
    let mut g = 1u64;
    let steps = steps % (degree / 2).max(1);
    for _ in 0..steps {
        g = (g * 5) % m;
    }
    g
}

/// Returns the Galois element `2N − 1` implementing complex conjugation of the slots.
pub fn galois_element_for_conjugation(degree: usize) -> u64 {
    2 * degree as u64 - 1
}

/// The paper's closed-form rotated-slot index (Equation 4):
/// `new_index_k(i) = (5^k − 1)/2 + 5·i (mod N)`.
///
/// The division by two is exact because `5^k − 1` is even, and the reduction modulo `N` is a
/// bitwise AND because `N` is a power of two — exactly the simplifications the FAB automorph
/// unit exploits.
pub fn fab_rotation_index(degree: usize, k: usize, i: usize) -> usize {
    let m = 2 * degree;
    let mut five_pow_k = 1usize;
    for _ in 0..k {
        five_pow_k = (five_pow_k * 5) % m;
    }
    let offset = (five_pow_k - 1) / 2;
    (offset + 5 * i) & (degree - 1)
}

/// A precomputed coefficient-domain permutation (with signs) for a Galois automorphism
/// `x → x^{element}` on the negacyclic ring of the given degree.
#[derive(Debug, Clone)]
pub struct AutomorphismMap {
    degree: usize,
    element: u64,
    /// `target[i]` = destination index of source coefficient `i`.
    target: Vec<usize>,
    /// `negate[i]` = whether the coefficient picks up a minus sign.
    negate: Vec<bool>,
}

impl AutomorphismMap {
    /// Builds the permutation for `x → x^{element}`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidGaloisElement`] if the element is even or not in `[1, 2N)`,
    /// or [`MathError::InvalidDegree`] if the degree is not a power of two.
    pub fn new(degree: usize, element: u64) -> Result<Self> {
        if degree < 2 || !degree.is_power_of_two() {
            return Err(MathError::InvalidDegree {
                degree,
                reason: "automorphism degree must be a power of two",
            });
        }
        let m = 2 * degree as u64;
        if element % 2 == 0 || element == 0 || element >= m {
            return Err(MathError::InvalidGaloisElement { element, degree });
        }
        let mut target = vec![0usize; degree];
        let mut negate = vec![false; degree];
        for (i, (t, s)) in target.iter_mut().zip(negate.iter_mut()).enumerate() {
            let raw = (i as u64 * element) % m;
            if raw < degree as u64 {
                *t = raw as usize;
                *s = false;
            } else {
                *t = (raw - degree as u64) as usize;
                *s = true;
            }
        }
        Ok(Self {
            degree,
            element,
            target,
            negate,
        })
    }

    /// The ring degree this map was built for.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The Galois element `k` of `x → x^k`.
    pub fn element(&self) -> u64 {
        self.element
    }

    /// Applies the automorphism to a coefficient-representation polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != degree`.
    pub fn apply(&self, coeffs: &[u64], modulus: &Modulus) -> Vec<u64> {
        let mut out = vec![0u64; self.degree];
        self.apply_into(coeffs, modulus, &mut out);
        out
    }

    /// Applies the automorphism writing into a caller-provided output row (every index of
    /// `out` is overwritten). Lets flat-layout polynomial kernels permute limb rows without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != degree` or `out.len() != degree`.
    pub fn apply_into(&self, coeffs: &[u64], modulus: &Modulus, out: &mut [u64]) {
        assert_eq!(coeffs.len(), self.degree);
        assert_eq!(out.len(), self.degree);
        for (i, &c) in coeffs.iter().enumerate() {
            let t = self.target[i];
            out[t] = if self.negate[i] { modulus.neg(c) } else { c };
        }
    }
}

/// A precomputed **evaluation-domain** permutation for a Galois automorphism
/// `x → x^{element}` on the negacyclic ring.
///
/// The lazy NTT ([`crate::NttTable::forward`]) stores the evaluation at `ψ^{2·brv(i)+1}` in
/// output slot `i` (ψ a primitive 2N-th root, `brv` the log-N bit reversal). Because Galois
/// elements are odd units modulo `2N`, `σ_t` maps the evaluation point set to itself:
/// `σ_t(a)(ψ^e) = a(ψ^{e·t})`, so in evaluation representation the automorphism is a **pure
/// permutation with no sign fix-ups** — `out[i] = in[source[i]]` where `source[i]` is the
/// slot holding the exponent `(2·brv(i)+1)·t mod 2N`.
///
/// This is what lets hoisted rotation batches share one ModUp *and* one forward-NTT sweep:
/// the raised digits are transformed once, and every rotation in the batch only pays the
/// permutation (applied on the fly inside the key-switch inner product) — the per-rotation
/// forward transforms of the coefficient-domain path are audited-redundant and eliminated.
#[derive(Debug, Clone)]
pub struct EvalAutomorphismMap {
    degree: usize,
    element: u64,
    /// `source[i]` = evaluation slot of the input feeding output slot `i`.
    source: Vec<usize>,
}

impl EvalAutomorphismMap {
    /// Builds the evaluation-domain permutation for `x → x^{element}`.
    ///
    /// # Errors
    ///
    /// Same as [`AutomorphismMap::new`].
    pub fn new(degree: usize, element: u64) -> Result<Self> {
        if degree < 2 || !degree.is_power_of_two() {
            return Err(MathError::InvalidDegree {
                degree,
                reason: "automorphism degree must be a power of two",
            });
        }
        let m = 2 * degree as u64;
        if element % 2 == 0 || element == 0 || element >= m {
            return Err(MathError::InvalidGaloisElement { element, degree });
        }
        let log_n = degree.trailing_zeros();
        let brv = |i: u64| (i.reverse_bits() >> (64 - log_n)) as usize;
        let mut source = vec![0usize; degree];
        for (i, slot) in source.iter_mut().enumerate() {
            let exponent = 2 * brv(i as u64) as u64 + 1;
            // Odd × odd mod 2N stays odd, so the halving below is exact.
            let mapped = (exponent * element) % m;
            *slot = brv((mapped - 1) / 2);
        }
        Ok(Self {
            degree,
            element,
            source,
        })
    }

    /// The ring degree this map was built for.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The Galois element `k` of `x → x^k`.
    pub fn element(&self) -> u64 {
        self.element
    }

    /// `source[i]` = input evaluation slot feeding output slot `i` (for fused gathers).
    pub fn source(&self) -> &[usize] {
        &self.source
    }

    /// Applies the permutation to one evaluation-form row (`out[i] = input[source[i]]`).
    /// Values are moved untouched, so lazy residues stay valid.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the degree.
    pub fn apply_into(&self, input: &[u64], out: &mut [u64]) {
        assert_eq!(input.len(), self.degree);
        assert_eq!(out.len(), self.degree);
        for (o, &s) in out.iter_mut().zip(self.source.iter()) {
            *o = input[s];
        }
    }
}

/// Applies the automorphism `x → x^{element}` to a coefficient-domain polynomial without
/// precomputing a map. Convenience wrapper over [`AutomorphismMap`].
///
/// # Errors
///
/// Propagates the construction errors of [`AutomorphismMap::new`].
pub fn apply_automorphism(coeffs: &[u64], element: u64, modulus: &Modulus) -> Result<Vec<u64>> {
    let map = AutomorphismMap::new(coeffs.len(), element)?;
    Ok(map.apply(coeffs, modulus))
}

/// Returns the bit-reversal permutation of `0..n` (n a power of two).
pub fn bit_reverse_indices(n: usize) -> Vec<usize> {
    assert!(n.is_power_of_two());
    let log_n = n.trailing_zeros();
    (0..n)
        .map(|i| ((i as u64).reverse_bits() >> (64 - log_n)) as usize)
        .collect()
}

/// Permutes a slice in place by bit-reversed index.
pub fn bit_reverse_permute<T>(values: &mut [T]) {
    let n = values.len();
    assert!(n.is_power_of_two());
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let j = ((i as u64).reverse_bits() >> (64 - log_n)) as usize;
        if i < j {
            values.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn modulus() -> Modulus {
        Modulus::new(crate::generate_ntt_prime(40, 1 << 10, 0).unwrap()).unwrap()
    }

    #[test]
    fn galois_elements_are_odd_units() {
        let n = 1 << 8;
        for steps in 0..16 {
            let g = galois_element_for_rotation(n, steps);
            assert_eq!(g % 2, 1);
            assert!(g < 2 * n as u64);
        }
        assert_eq!(galois_element_for_conjugation(n), 2 * n as u64 - 1);
    }

    #[test]
    fn automorphism_identity_element() {
        let q = modulus();
        let n = 16;
        let coeffs: Vec<u64> = (0..n as u64).collect();
        let out = apply_automorphism(&coeffs, 1, &q).unwrap();
        assert_eq!(out, coeffs);
    }

    #[test]
    fn automorphism_composition_matches_product_of_elements() {
        let q = modulus();
        let n = 32;
        let coeffs: Vec<u64> = (1..=n as u64).collect();
        let g1 = 5u64;
        let g2 = 25u64;
        let once =
            apply_automorphism(&apply_automorphism(&coeffs, g1, &q).unwrap(), g1, &q).unwrap();
        let combined = apply_automorphism(&coeffs, g2, &q).unwrap();
        assert_eq!(once, combined);
        let _ = g2;
    }

    #[test]
    fn conjugation_is_involution() {
        let q = modulus();
        let n = 64;
        let coeffs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let g = galois_element_for_conjugation(n);
        let twice =
            apply_automorphism(&apply_automorphism(&coeffs, g, &q).unwrap(), g, &q).unwrap();
        assert_eq!(twice, coeffs);
    }

    #[test]
    fn automorphism_preserves_multiplicative_structure() {
        // σ(a · b) = σ(a) · σ(b) in the negacyclic ring: check through the NTT multiplier.
        let n = 64usize;
        let q_val = crate::generate_ntt_prime(40, n, 0).unwrap();
        let q = Modulus::new(q_val).unwrap();
        let table = crate::NttTable::new(n, q.clone()).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q_val).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 1) % q_val).collect();
        let g = 5u64;
        let sigma_ab = apply_automorphism(&table.negacyclic_multiply(&a, &b), g, &q).unwrap();
        let sigma_a_sigma_b = table.negacyclic_multiply(
            &apply_automorphism(&a, g, &q).unwrap(),
            &apply_automorphism(&b, g, &q).unwrap(),
        );
        assert_eq!(sigma_ab, sigma_a_sigma_b);
    }

    #[test]
    fn rejects_invalid_elements() {
        assert!(AutomorphismMap::new(16, 2).is_err());
        assert!(AutomorphismMap::new(16, 0).is_err());
        assert!(AutomorphismMap::new(16, 32).is_err());
        assert!(AutomorphismMap::new(15, 3).is_err());
    }

    #[test]
    fn fab_rotation_index_matches_equation_4() {
        // Spot-check Equation (4) for small parameters: k = 1 → offset (5-1)/2 = 2, stride 5.
        let n = 1 << 6;
        assert_eq!(fab_rotation_index(n, 1, 0), 2);
        assert_eq!(fab_rotation_index(n, 1, 1), 7);
        assert_eq!(fab_rotation_index(n, 1, 13), (2 + 65) % n);
        // k = 0 must be the scaled identity map i → 5i mod N offset 0.
        assert_eq!(fab_rotation_index(n, 0, 3), 15);
    }

    #[test]
    fn fab_rotation_index_is_a_permutation() {
        let n = 1 << 8;
        for k in [1usize, 2, 5, 11] {
            let mut seen = vec![false; n];
            for i in 0..n {
                let idx = fab_rotation_index(n, k, i);
                assert!(!seen[idx], "index {idx} repeated for k={k}");
                seen[idx] = true;
            }
        }
    }

    #[test]
    fn evaluation_map_commutes_with_the_ntt() {
        // NTT(σ_t(a)) must equal the EvalAutomorphismMap permutation of NTT(a), bit for bit —
        // the soundness contract that lets hoisted batches permute instead of re-transform.
        let n = 64usize;
        let q_val = crate::generate_ntt_prime(40, n, 0).unwrap();
        let q = Modulus::new(q_val).unwrap();
        let table = crate::NttTable::new(n, q.clone()).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % q_val).collect();
        let mut a_eval = a.clone();
        table.forward(&mut a_eval);
        for element in [5u64, 25, 125 % (2 * n as u64), 2 * n as u64 - 1] {
            let coeff_map = AutomorphismMap::new(n, element).unwrap();
            let mut via_coeff = coeff_map.apply(&a, &q);
            table.forward(&mut via_coeff);
            let eval_map = EvalAutomorphismMap::new(n, element).unwrap();
            let mut via_eval = vec![0u64; n];
            eval_map.apply_into(&a_eval, &mut via_eval);
            assert_eq!(via_eval, via_coeff, "element {element}");
        }
    }

    #[test]
    fn evaluation_map_rejects_invalid_elements() {
        assert!(EvalAutomorphismMap::new(16, 2).is_err());
        assert!(EvalAutomorphismMap::new(16, 0).is_err());
        assert!(EvalAutomorphismMap::new(16, 32).is_err());
        assert!(EvalAutomorphismMap::new(15, 3).is_err());
        // Identity element is the identity permutation.
        let id = EvalAutomorphismMap::new(16, 1).unwrap();
        assert_eq!(id.source(), &(0..16).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn bit_reverse_is_involution() {
        let mut v: Vec<u32> = (0..64).collect();
        let original = v.clone();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, original);
        let idx = bit_reverse_indices(8);
        assert_eq!(idx, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    proptest! {
        #[test]
        fn prop_automorphism_is_permutation(element in (0u64..128).prop_map(|k| 2*k + 1)) {
            let n = 128usize;
            let map = AutomorphismMap::new(n, element % (2 * n as u64)).unwrap();
            let mut seen = vec![false; n];
            for i in 0..n {
                let t = map.target[i];
                prop_assert!(!seen[t]);
                seen[t] = true;
            }
        }

        #[test]
        fn prop_automorphism_linear(seed in any::<u64>()) {
            let q = modulus();
            let n = 64usize;
            let a: Vec<u64> = (0..n as u64).map(|i| (i.wrapping_mul(seed | 1)) % q.value()).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i.wrapping_add(seed)) % q.value()).collect();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
            let g = 5u64;
            let sa = apply_automorphism(&a, g, &q).unwrap();
            let sb = apply_automorphism(&b, g, &q).unwrap();
            let ssum = apply_automorphism(&sum, g, &q).unwrap();
            for i in 0..n {
                prop_assert_eq!(ssum[i], q.add(sa[i], sb[i]));
            }
        }
    }
}
