//! Multi-word (DSP-style) arithmetic on 54-bit operands.
//!
//! FAB maps 54-bit limb arithmetic onto the FPGA's DSP slices (18×27-bit multipliers,
//! 27-bit pre-adders) by splitting operands into three 18-bit words for multiplication and two
//! 27-bit words for addition/subtraction (Section 4.1, following Hankerson et al. algorithms
//! 2.7–2.9 with the paper's modified correction step). This module is the bit-exact software
//! model of that decomposition; the accelerator resource and latency models in `fab-core`
//! count DSP usage and pipeline depth from the same decomposition.

use crate::Modulus;

/// Bit-width of the multiplier words (DSP 18-bit multiplier port).
pub const WORD18_BITS: u32 = 18;
/// Bit-width of the adder words (DSP 27-bit pre-adder port).
pub const WORD27_BITS: u32 = 27;
/// Operand width handled by the functional units (paper: `log q = 54`).
pub const OPERAND_BITS: u32 = 54;

const MASK18: u64 = (1 << WORD18_BITS) - 1;
const MASK27: u64 = (1 << WORD27_BITS) - 1;
const MASK54: u64 = (1 << OPERAND_BITS) - 1;

/// A 54-bit operand decomposed into DSP-sized words, with modular add/sub/mul implemented via
/// multi-word arithmetic exactly as the FAB functional unit does.
///
/// ```
/// use fab_math::{Modulus, MultiWord54};
///
/// # fn main() -> Result<(), fab_math::MathError> {
/// let q = fab_math::generate_ntt_prime(54, 1 << 12, 0)?;
/// let modulus = Modulus::new(q)?;
/// let mw = MultiWord54::new(&modulus);
/// assert_eq!(mw.mod_add(q - 1, q - 2), modulus.add(q - 1, q - 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiWord54 {
    modulus: Modulus,
    q_words27: [u64; 2],
}

impl MultiWord54 {
    /// Creates the multi-word arithmetic unit model for a modulus of at most 54 bits.
    ///
    /// # Panics
    ///
    /// Panics if the modulus does not fit in 54 bits — the FAB functional unit is fixed-width.
    pub fn new(modulus: &Modulus) -> Self {
        assert!(
            modulus.bits() <= OPERAND_BITS,
            "FAB functional units operate on at most 54-bit limbs"
        );
        Self {
            modulus: modulus.clone(),
            q_words27: split27(modulus.value()),
        }
    }

    /// Splits a 54-bit operand into three 18-bit multiplier words (low to high).
    pub fn split_mul_words(&self, a: u64) -> [u64; 3] {
        split18(a)
    }

    /// Splits a 54-bit operand into two 27-bit adder words (low to high).
    pub fn split_add_words(&self, a: u64) -> [u64; 2] {
        split27(a)
    }

    /// Number of 18×18 partial products required by the operand-scanning (schoolbook)
    /// multiplication of two 54-bit operands. The FAB multiplier unrolls these across DSPs.
    pub fn partial_products(&self) -> usize {
        9
    }

    /// Multi-word modular addition (Hankerson alg. 2.7 with 27-bit correction step).
    pub fn mod_add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a <= MASK54 && b <= MASK54);
        let aw = split27(a);
        let bw = split27(b);
        // Word-wise add with carry propagation through the 27-bit pre-adders.
        let mut sum = [0u64; 3];
        let mut carry = 0u64;
        for i in 0..2 {
            let s = aw[i] + bw[i] + carry;
            sum[i] = s & MASK27;
            carry = s >> WORD27_BITS;
        }
        sum[2] = carry;
        let value = combine27(&sum);
        // Correction step performed as 27-bit subtraction when the sum exceeds q.
        let q = self.modulus.value();
        if value >= q {
            self.sub_words(value, q)
        } else {
            value
        }
    }

    /// Multi-word modular subtraction (Hankerson alg. 2.8 with 27-bit correction step).
    pub fn mod_sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a <= MASK54 && b <= MASK54);
        if a >= b {
            self.sub_words(a, b)
        } else {
            // a - b + q, computed as (a + q) - b with multi-word operations.
            let a_plus_q = self.add_words_raw(a, self.modulus.value());
            a_plus_q - b
        }
    }

    /// Multi-word integer multiplication via operand scanning (Hankerson alg. 2.9): nine 18×18
    /// partial products accumulated column-wise, exactly as the loop-unrolled FAB multiplier.
    pub fn widening_mul(&self, a: u64, b: u64) -> u128 {
        debug_assert!(a <= MASK54 && b <= MASK54);
        let aw = split18(a);
        let bw = split18(b);
        // Column accumulation: column k collects products a_i * b_j with i + j = k.
        let mut columns = [0u128; 5];
        for (i, &ai) in aw.iter().enumerate() {
            for (j, &bj) in bw.iter().enumerate() {
                columns[i + j] += (ai as u128) * (bj as u128);
            }
        }
        let mut result = 0u128;
        for (k, &col) in columns.iter().enumerate() {
            result += col << (WORD18_BITS as usize * k);
        }
        result
    }

    /// Multi-word modular multiplication: operand-scanning multiply followed by the shift-add
    /// reduction (the two pipelined stages of the FAB modular multiplier).
    pub fn mod_mul(&self, a: u64, b: u64) -> u64 {
        let product = self.widening_mul(a, b);
        self.modulus.reduce_u128(product)
    }

    /// Returns the modulus this unit reduces against.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    fn add_words_raw(&self, a: u64, b: u64) -> u64 {
        // Three 27-bit words cover intermediate values up to 2^55 (sums of two 54-bit operands).
        let aw = split27_wide(a);
        let bw = split27_wide(b);
        let mut carry = 0u64;
        let mut out = 0u64;
        for i in 0..3 {
            let s = aw[i] + bw[i] + carry;
            out |= (s & MASK27) << (WORD27_BITS as usize * i);
            carry = s >> WORD27_BITS;
        }
        debug_assert_eq!(carry, 0);
        out
    }

    fn sub_words(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a >= b);
        let aw = split27_wide(a);
        let bw = split27_wide(b);
        let _ = self.q_words27;
        let mut borrow = 0i64;
        let mut out = 0u64;
        for i in 0..3 {
            let mut d = aw[i] as i64 - bw[i] as i64 - borrow;
            if d < 0 {
                d += 1 << WORD27_BITS;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out |= (d as u64) << (WORD27_BITS as usize * i);
        }
        debug_assert_eq!(borrow, 0);
        out
    }
}

fn split18(a: u64) -> [u64; 3] {
    [
        a & MASK18,
        (a >> WORD18_BITS) & MASK18,
        (a >> (2 * WORD18_BITS)) & MASK18,
    ]
}

fn split27(a: u64) -> [u64; 2] {
    [a & MASK27, (a >> WORD27_BITS) & MASK27]
}

fn split27_wide(a: u64) -> [u64; 3] {
    [
        a & MASK27,
        (a >> WORD27_BITS) & MASK27,
        (a >> (2 * WORD27_BITS)) & MASK27,
    ]
}

fn combine27(words: &[u64; 3]) -> u64 {
    words[0] | (words[1] << WORD27_BITS) | (words[2] << (2 * WORD27_BITS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit() -> MultiWord54 {
        let q = crate::generate_ntt_prime(54, 1 << 12, 0).unwrap();
        MultiWord54::new(&Modulus::new(q).unwrap())
    }

    #[test]
    fn word_split_roundtrip() {
        let mw = unit();
        let a = 0x2A_5555_AAAA_1234u64;
        let w18 = mw.split_mul_words(a);
        assert_eq!(
            w18[0] | (w18[1] << 18) | (w18[2] << 36),
            a,
            "18-bit split must recombine"
        );
        let w27 = mw.split_add_words(a);
        assert_eq!(w27[0] | (w27[1] << 27), a, "27-bit split must recombine");
    }

    #[test]
    fn partial_product_count_matches_paper() {
        // 54/18 = 3 words per operand → 9 partial products; the paper unrolls these to reach
        // a 12-cycle multiplier latency instead of the naïve 21 cycles.
        assert_eq!(unit().partial_products(), 9);
    }

    #[test]
    fn mod_add_matches_reference() {
        let mw = unit();
        let q = mw.modulus().value();
        for (a, b) in [
            (0, 0),
            (q - 1, q - 1),
            (q - 1, 1),
            (q / 2, q / 2 + 1),
            (12345, 67890),
        ] {
            assert_eq!(mw.mod_add(a, b), mw.modulus().add(a, b));
        }
    }

    #[test]
    fn mod_sub_matches_reference() {
        let mw = unit();
        let q = mw.modulus().value();
        for (a, b) in [(0, 0), (0, q - 1), (q - 1, q - 1), (1, 2), (q / 2, q - 1)] {
            assert_eq!(mw.mod_sub(a, b), mw.modulus().sub(a, b));
        }
    }

    #[test]
    fn widening_mul_matches_native() {
        let mw = unit();
        let q = mw.modulus().value();
        for (a, b) in [
            (q - 1, q - 1),
            (q - 1, 2),
            (0, q - 1),
            (123456789, 987654321),
        ] {
            assert_eq!(mw.widening_mul(a, b), a as u128 * b as u128);
        }
    }

    #[test]
    #[should_panic(expected = "54-bit")]
    fn rejects_oversized_modulus() {
        let q = crate::generate_ntt_prime(60, 1 << 10, 0).unwrap();
        let _ = MultiWord54::new(&Modulus::new(q).unwrap());
    }

    proptest! {
        #[test]
        fn prop_mod_add_matches(a in any::<u64>(), b in any::<u64>()) {
            let mw = unit();
            let q = mw.modulus().value();
            let (a, b) = (a % q, b % q);
            prop_assert_eq!(mw.mod_add(a, b), mw.modulus().add(a, b));
        }

        #[test]
        fn prop_mod_sub_matches(a in any::<u64>(), b in any::<u64>()) {
            let mw = unit();
            let q = mw.modulus().value();
            let (a, b) = (a % q, b % q);
            prop_assert_eq!(mw.mod_sub(a, b), mw.modulus().sub(a, b));
        }

        #[test]
        fn prop_widening_mul_matches(a in any::<u64>(), b in any::<u64>()) {
            let mw = unit();
            let q = mw.modulus().value();
            let (a, b) = (a % q, b % q);
            prop_assert_eq!(mw.widening_mul(a, b), a as u128 * b as u128);
        }

        #[test]
        fn prop_mod_mul_matches(a in any::<u64>(), b in any::<u64>()) {
            let mw = unit();
            let q = mw.modulus().value();
            let (a, b) = (a % q, b % q);
            prop_assert_eq!(mw.mod_mul(a, b), mw.modulus().mul(a, b));
        }
    }
}
