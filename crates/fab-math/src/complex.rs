//! A minimal complex-number type used by the CKKS encoder and the homomorphic FFT matrices.
//!
//! The CKKS plaintext space is `C^{N/2}`; encoding and bootstrapping both need complex
//! arithmetic. To stay within the approved offline dependency set we provide our own small
//! `Complex64` rather than pulling in `num-complex`.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// ```
/// use fab_math::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert!((i * i + Complex64::new(1.0, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// The multiplicative identity.
    #[inline]
    pub fn one() -> Self {
        Self { re: 1.0, im: 0.0 }
    }

    /// The imaginary unit `i`.
    #[inline]
    pub fn i() -> Self {
        Self { re: 0.0, im: 1.0 }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn from_polar(radius: f64, theta: f64) -> Self {
        Self {
            re: radius * theta.cos(),
            im: radius * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Euclidean norm `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared norm `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse. Returns NaN components if `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via multiplication by the reciprocal
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 3.0);
        let c = Complex64::new(4.0, 4.0);
        assert!(((a + b) + c - (a + (b + c))).norm() < 1e-12);
        assert!(((a * b) * c - (a * (b * c))).norm() < 1e-12);
        assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-12);
    }

    #[test]
    fn polar_and_conjugate() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!(((z * z.conj()).re - 4.0).abs() < 1e-12);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(3.0, -7.0);
        let b = Complex64::new(0.5, 0.25);
        let q = a / b;
        assert!((q * b - a).norm() < 1e-10);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    proptest! {
        #[test]
        fn prop_mul_commutative(re1 in -1e3f64..1e3, im1 in -1e3f64..1e3,
                                re2 in -1e3f64..1e3, im2 in -1e3f64..1e3) {
            let a = Complex64::new(re1, im1);
            let b = Complex64::new(re2, im2);
            prop_assert!((a * b - b * a).norm() < 1e-9);
        }

        #[test]
        fn prop_conj_is_involution(re in -1e6f64..1e6, im in -1e6f64..1e6) {
            let z = Complex64::new(re, im);
            prop_assert_eq!(z.conj().conj(), z);
        }
    }
}
