//! Negacyclic Number Theoretic Transform over `Z_q[x]/(x^N + 1)`.
//!
//! FAB uses a unified Cooley–Tukey datapath for both NTT and inverse NTT (Section 4.5), with
//! 256 radix-2 butterfly units processing 512 coefficients per cycle. This module is the
//! software-reference transform: Harvey-style butterflies with Shoup-precomputed twiddles,
//! merged ψ powers (so no separate pre/post-multiplication is needed for the negacyclic wrap),
//! and tables stored in bit-reversed order.
//!
//! ## Lazy reduction
//!
//! The hot [`NttTable::forward`] / [`NttTable::inverse`] paths use *lazy reduction*: butterfly
//! operands live in the extended domain `[0, 2q)` (forward outputs drift up to `[0, 4q)`), no
//! butterfly performs a full canonical reduction, and a single correction pass at the end maps
//! every coefficient back into `[0, q)`. The inverse transform additionally fuses the `N⁻¹`
//! scaling into its last butterfly stage, so the separate scaling sweep of the textbook
//! algorithm disappears. The pre-refactor eager transforms are kept verbatim as
//! [`NttTable::forward_reference`] / [`NttTable::inverse_reference`]; property tests pin the
//! lazy transforms to them bit for bit, and `fab-bench` measures the speedup between the two.
//!
//! ## Cache blocking (four-step decomposition)
//!
//! At the paper's ring degree (`N = 2^16`, a 512 KiB row) the linear stage-by-stage traversal
//! streams the whole row from memory once per butterfly stage — 17 passes over a row that does
//! not fit in L1/L2, which is exactly the memory-bound regime FAB's Table 5–6 analysis
//! predicts. The default [`NttTable::forward`] / [`NttTable::forward_lazy`] /
//! [`NttTable::inverse`] paths therefore use the classic four-step (cache-blocked)
//! decomposition: a power-of-two block length `M` splits the stages into the *strided* half
//! (butterfly span `≥ M`; every butterfly connects two elements with the same index mod `M`,
//! so the row is walked in narrow column panels whose working set fits in cache across **all**
//! strided stages) and the *contiguous* half (span `< M`; each aligned `M`-block completes all
//! remaining stages while resident). Every butterfly executes with the same twiddle and the
//! same per-element stage order as the linear traversal, so the blocked transforms are
//! **bitwise identical** to the retained [`NttTable::forward_lazy_linear`] /
//! [`NttTable::inverse_linear`] references — pinned by property tests over random degrees,
//! moduli and block lengths. The block length comes from [`ntt_block_len`]: a one-shot runtime
//! probe (overridable via `FAB_NTT_BLOCK`, with a fixed deterministic fallback).

use crate::{MathError, Modulus, Result};
use std::sync::OnceLock;

/// Column-panel width (elements) for the strided phase of the blocked transforms: wide
/// enough to amortise the twiddle loads across full cache lines, narrow enough that a
/// panel's working set (`(N/M)·PANEL_WIDTH` elements) stays L1-resident.
const PANEL_WIDTH: usize = 64;

/// Deterministic fallback block length (64 KiB of `u64`s — comfortably inside any
/// contemporary L2) used when the runtime probe is unavailable or `FAB_NTT_BLOCK` is unset.
pub const DEFAULT_NTT_BLOCK: usize = 1 << 13;

static NTT_BLOCK: OnceLock<usize> = OnceLock::new();

/// The sentinel block length meaning "the probe found the linear traversal fastest" — large
/// enough that every realistic degree degenerates to the linear path (the right answer on
/// machines whose last-level cache already holds a full row, where tiling can only add
/// overhead).
pub const NTT_BLOCK_LINEAR: usize = 1 << 62;

/// The process-wide NTT block length used by the default transform entry points.
///
/// Resolution order, decided once per process: the `FAB_NTT_BLOCK` environment variable (a
/// power of two ≥ 2) if set; otherwise a small runtime probe that times the blocked
/// forward+inverse pair at `N = 2^15` over candidate blocks `2^11..=2^14` **and the linear
/// traversal** and keeps the fastest (returning [`NTT_BLOCK_LINEAR`] when linear wins — on
/// a machine whose caches hold a full row, tiling has nothing to recover); otherwise the
/// deterministic [`DEFAULT_NTT_BLOCK`]. The choice only affects traversal order — results
/// are bitwise identical for every block length — so a machine-dependent probe outcome
/// never changes a computed value.
pub fn ntt_block_len() -> usize {
    *NTT_BLOCK.get_or_init(|| {
        if let Ok(raw) = std::env::var("FAB_NTT_BLOCK") {
            if let Ok(block) = raw.trim().parse::<usize>() {
                if block >= 2 && block.is_power_of_two() {
                    return block;
                }
            }
        }
        probe_block_len().unwrap_or(DEFAULT_NTT_BLOCK)
    })
}

/// Times the blocked forward+inverse pair over the candidate block lengths (plus the linear
/// traversal) and returns the fastest, or `None` if a probe table cannot be built.
fn probe_block_len() -> Option<usize> {
    let n = 1usize << 15;
    let q = crate::generate_ntt_prime(50, n, 0).ok()?;
    let table = NttTable::new(n, Modulus::new(q).ok()?).ok()?;
    // Deterministic pseudo-random residues (SplitMix64) — the probe must not perturb any
    // seeded RNG state elsewhere in the process.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let data: Vec<u64> = (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % q
        })
        .collect();
    let candidates = [1usize << 11, 1 << 12, 1 << 13, 1 << 14, NTT_BLOCK_LINEAR];
    let mut best: Option<(std::time::Duration, usize)> = None;
    for &block in &candidates {
        let mut values = data.clone();
        // Warm-up round, then time a few forward+inverse pairs (block ≥ n runs linear).
        // The canonical forward, not the lazy one: `inverse` requires its input in
        // `[0, 2q)`, which the lazy forward's `[0, 4q)` residues would violate.
        table.forward_with_block(&mut values, block);
        table.inverse_with_block(&mut values, block);
        let start = std::time::Instant::now();
        for _ in 0..3 {
            table.forward_with_block(&mut values, block);
            table.inverse_with_block(&mut values, block);
        }
        let elapsed = start.elapsed();
        if best.map_or(true, |(t, _)| elapsed < t) {
            best = Some((elapsed, block));
        }
    }
    best.map(|(_, block)| block)
}

/// Rounds a requested block length up to a power of two and clamps it to `[2, n]`.
fn clamp_block(block: usize, n: usize) -> usize {
    block.max(2).next_power_of_two().min(n)
}

/// Precomputed NTT tables for one `(N, q)` pair.
///
/// ```
/// use fab_math::{Modulus, NttTable};
///
/// # fn main() -> Result<(), fab_math::MathError> {
/// let n = 1 << 10;
/// let q = fab_math::generate_ntt_prime(50, n, 0)?;
/// let table = NttTable::new(n, Modulus::new(q)?)?;
/// let mut a = vec![0u64; n];
/// a[1] = 1; // x
/// let mut b = a.clone();
/// table.forward(&mut a);
/// table.forward(&mut b);
/// let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| table.modulus().mul(x, y)).collect();
/// table.inverse(&mut prod);
/// // x * x = x^2
/// assert_eq!(prod[2], 1);
/// assert!(prod.iter().enumerate().all(|(i, &c)| i == 2 || c == 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    degree: usize,
    modulus: Modulus,
    /// ψ^brv(i) for the forward transform (ψ a primitive 2N-th root of unity).
    psi_rev: Vec<u64>,
    psi_rev_shoup: Vec<u64>,
    /// ψ^{-brv(i)} for the inverse transform.
    psi_inv_rev: Vec<u64>,
    psi_inv_rev_shoup: Vec<u64>,
    /// N^{-1} mod q.
    degree_inv: u64,
    degree_inv_shoup: u64,
    /// `ψ^{-brv(1)} · N^{-1} mod q`: the last inverse stage's single twiddle with the `N⁻¹`
    /// scaling fused in, so the inverse transform needs no separate scaling pass.
    psi_inv_last_fused: u64,
    psi_inv_last_fused_shoup: u64,
}

impl NttTable {
    /// Builds NTT tables for ring degree `degree` (a power of two) and modulus `q ≡ 1 (mod 2N)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] if `degree` is not a power of two ≥ 2, and
    /// [`MathError::NoPrimitiveRoot`] if the modulus does not support a 2N-th root of unity.
    pub fn new(degree: usize, modulus: Modulus) -> Result<Self> {
        if degree < 2 || !degree.is_power_of_two() {
            return Err(MathError::InvalidDegree {
                degree,
                reason: "NTT degree must be a power of two at least 2",
            });
        }
        let q = modulus.value();
        let two_n = 2 * degree as u64;
        if (q - 1) % two_n != 0 {
            return Err(MathError::NoPrimitiveRoot {
                modulus: q,
                order: two_n,
            });
        }
        let psi = find_primitive_root(&modulus, two_n)?;
        let psi_inv = modulus.inv(psi)?;
        let log_n = degree.trailing_zeros();

        let mut psi_rev = vec![0u64; degree];
        let mut psi_inv_rev = vec![0u64; degree];
        let mut power = 1u64;
        let mut power_inv = 1u64;
        for i in 0..degree {
            let rev = (i as u64).reverse_bits() >> (64 - log_n);
            psi_rev[rev as usize] = power;
            psi_inv_rev[rev as usize] = power_inv;
            power = modulus.mul(power, psi);
            power_inv = modulus.mul(power_inv, psi_inv);
        }
        let psi_rev_shoup = psi_rev
            .iter()
            .map(|&w| modulus.shoup_precompute(w))
            .collect();
        let psi_inv_rev_shoup = psi_inv_rev
            .iter()
            .map(|&w| modulus.shoup_precompute(w))
            .collect();
        let degree_inv = modulus.inv(degree as u64)?;
        let degree_inv_shoup = modulus.shoup_precompute(degree_inv);
        let psi_inv_last_fused = modulus.mul(psi_inv_rev[1], degree_inv);
        let psi_inv_last_fused_shoup = modulus.shoup_precompute(psi_inv_last_fused);
        Ok(Self {
            degree,
            modulus,
            psi_rev,
            psi_rev_shoup,
            psi_inv_rev,
            psi_inv_rev_shoup,
            degree_inv,
            degree_inv_shoup,
            psi_inv_last_fused,
            psi_inv_last_fused_shoup,
        })
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The limb modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation representation).
    ///
    /// Lazy-reduction Harvey butterflies: operands stay in `[0, 4q)` across the whole
    /// butterfly network (each butterfly only conditionally subtracts `2q` from its upper
    /// input) and a single correction pass at the end restores the canonical `[0, q)` range.
    /// Traversal is cache-blocked at [`ntt_block_len`]; output is bit-for-bit identical to
    /// [`NttTable::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward(&self, values: &mut [u64]) {
        self.forward_lazy(values);
        let q = &self.modulus;
        for v in values.iter_mut() {
            *v = q.reduce_4q(*v);
        }
    }

    /// [`NttTable::forward`] with an explicit block length (testing/benchmarking entry).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_with_block(&self, values: &mut [u64], block: usize) {
        self.forward_lazy_with_block(values, block);
        let q = &self.modulus;
        for v in values.iter_mut() {
            *v = q.reduce_4q(*v);
        }
    }

    /// Forward negacyclic NTT **without the final canonicalisation pass**: inputs may be lazy
    /// residues in `[0, 4q)` and outputs stay in `[0, 4q)`, congruent to the canonical
    /// [`NttTable::forward`] output limb-for-limb.
    ///
    /// This is the transform-minimal key-switch entry point: the ModUp conversion hands over
    /// `[0, 2q)` rows directly (skipping its own correction pass), and the u128 KSKIP inner
    /// product consumes the `[0, 4q)` evaluations as-is — its single end-of-accumulation
    /// Barrett reduction absorbs the laziness, so the two correction sweeps between ModUp and
    /// KSKIP disappear entirely. Traversal is cache-blocked at [`ntt_block_len`]; output is
    /// bit-for-bit identical to [`NttTable::forward_lazy_linear`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_lazy(&self, values: &mut [u64]) {
        self.forward_lazy_with_block(values, ntt_block_len());
    }

    /// The linear stage-by-stage lazy forward traversal, kept verbatim as the retained
    /// reference for the blocked path (property tests pin
    /// [`NttTable::forward_lazy_with_block`] to it bit for bit at every block length, and
    /// `fab-bench`'s roofline measures the locality speedup between the two).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_lazy_linear(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let two_q = q.two_q();
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for (i, block) in values.chunks_exact_mut(2 * t).enumerate() {
                let s = self.psi_rev[m + i];
                let s_shoup = self.psi_rev_shoup[m + i];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // Invariant: *x, *y ∈ [0, 4q). Reduce x into [0, 2q), keep the twiddle
                    // product lazy in [0, 2q); the outputs land back in [0, 4q).
                    let mut u = *x;
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = q.mul_shoup_lazy(*y, s, s_shoup);
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            m <<= 1;
        }
    }

    /// Cache-blocked lazy forward transform: the four-step decomposition described in the
    /// module docs, with `block` rounded up to a power of two and clamped to `[2, N]`
    /// (`block ≥ N` degenerates to the linear traversal). Performs exactly the butterflies
    /// of [`NttTable::forward_lazy_linear`] with the same twiddles and the same per-element
    /// stage order — only the iteration order across *independent* butterflies changes — so
    /// the output is bitwise identical for every block length.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_lazy_with_block(&self, values: &mut [u64], block: usize) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let n = self.degree;
        let mb = clamp_block(block, n);
        if mb >= n {
            return self.forward_lazy_linear(values);
        }
        let q = &self.modulus;
        let two_q = q.two_q();
        let stages = n.trailing_zeros() as usize;
        // Stages 1..=strided have butterfly span t = n >> s ≥ mb: both butterfly ends share
        // their index mod mb, so column panels are closed under all of them.
        let strided = (n / mb).trailing_zeros() as usize;
        let w = mb.min(PANEL_WIDTH);
        // Phase 1: strided stages, one column panel at a time (panel working set:
        // (n/mb)·w elements across all strided stages).
        for c0 in (0..mb).step_by(w) {
            for s in 1..=strided {
                let t = n >> s;
                let m = 1usize << (s - 1);
                for (i, group) in values.chunks_exact_mut(2 * t).enumerate() {
                    let tw = self.psi_rev[m + i];
                    let tw_shoup = self.psi_rev_shoup[m + i];
                    let (lo, hi) = group.split_at_mut(t);
                    let mut u = 0;
                    while u < t {
                        for (x, y) in lo[u + c0..u + c0 + w]
                            .iter_mut()
                            .zip(hi[u + c0..u + c0 + w].iter_mut())
                        {
                            let mut a = *x;
                            if a >= two_q {
                                a -= two_q;
                            }
                            let v = q.mul_shoup_lazy(*y, tw, tw_shoup);
                            *x = a + v;
                            *y = a + two_q - v;
                        }
                        u += mb;
                    }
                }
            }
        }
        // Phase 2: contiguous stages (span < mb), each aligned mb-block completing all
        // remaining stages while cache-resident.
        for (b, blk) in values.chunks_exact_mut(mb).enumerate() {
            for s in (strided + 1)..=stages {
                let t = n >> s;
                let m = 1usize << (s - 1);
                let i0 = (b * mb) / (2 * t);
                for (j, group) in blk.chunks_exact_mut(2 * t).enumerate() {
                    let tw = self.psi_rev[m + i0 + j];
                    let tw_shoup = self.psi_rev_shoup[m + i0 + j];
                    let (lo, hi) = group.split_at_mut(t);
                    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                        let mut a = *x;
                        if a >= two_q {
                            a -= two_q;
                        }
                        let v = q.mul_shoup_lazy(*y, tw, tw_shoup);
                        *x = a + v;
                        *y = a + two_q - v;
                    }
                }
            }
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient representation).
    ///
    /// Lazy-reduction Gentleman–Sande butterflies over the `[0, 2q)` domain, with the `N⁻¹`
    /// scaling fused into the final stage's twiddles (no separate scaling sweep) and one
    /// correction pass at the end. Traversal is cache-blocked at [`ntt_block_len`]; output
    /// is bit-for-bit identical to [`NttTable::inverse_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn inverse(&self, values: &mut [u64]) {
        self.inverse_with_block(values, ntt_block_len());
    }

    /// The linear stage-by-stage lazy inverse traversal, kept verbatim as the retained
    /// reference for the blocked path (see [`NttTable::forward_lazy_linear`]).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn inverse_linear(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let two_q = q.two_q();
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 2 {
            let h = m >> 1;
            for (i, block) in values.chunks_exact_mut(2 * t).enumerate() {
                let s = self.psi_inv_rev[h + i];
                let s_shoup = self.psi_inv_rev_shoup[h + i];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // Invariant: *x, *y ∈ [0, 2q).
                    let u = *x;
                    let v = *y;
                    *x = q.add_lazy(u, v);
                    *y = q.mul_shoup_lazy(u + two_q - v, s, s_shoup);
                }
            }
            t <<= 1;
            m = h;
        }
        // Last stage (m == 2): one butterfly group spanning the whole array, with N⁻¹ fused
        // into both output twiddles.
        debug_assert_eq!(t, n / 2);
        let (lo, hi) = values.split_at_mut(t);
        for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *x;
            let v = *y;
            *x = q.mul_shoup_lazy(q.add_lazy(u, v), self.degree_inv, self.degree_inv_shoup);
            *y = q.mul_shoup_lazy(
                u + two_q - v,
                self.psi_inv_last_fused,
                self.psi_inv_last_fused_shoup,
            );
        }
        for v in values.iter_mut() {
            *v = q.reduce_2q(*v);
        }
    }

    /// Cache-blocked inverse transform: the mirror of
    /// [`NttTable::forward_lazy_with_block`] — contiguous stages (span ≤ `block`) complete
    /// per aligned block first, then the strided stages (including the fused `N⁻¹` last
    /// stage) walk column panels, then the single correction pass. Bitwise identical to
    /// [`NttTable::inverse_linear`] for every block length; `block ≥ N` degenerates to it.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn inverse_with_block(&self, values: &mut [u64], block: usize) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let n = self.degree;
        let mb = clamp_block(block, n);
        if mb >= n {
            return self.inverse_linear(values);
        }
        let q = &self.modulus;
        let two_q = q.two_q();
        // Phase 1: contiguous stages (group span 2t ≤ mb), each aligned mb-block running
        // them all while cache-resident. mb < n keeps every such stage strictly before the
        // fused last stage (2t ≤ mb ≤ n/2 ⇒ t ≤ n/4).
        for (b, blk) in values.chunks_exact_mut(mb).enumerate() {
            let mut t = 1usize;
            while 2 * t <= mb {
                let h = n / (2 * t);
                let i0 = (b * mb) / (2 * t);
                for (j, group) in blk.chunks_exact_mut(2 * t).enumerate() {
                    let s = self.psi_inv_rev[h + i0 + j];
                    let s_shoup = self.psi_inv_rev_shoup[h + i0 + j];
                    let (lo, hi) = group.split_at_mut(t);
                    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                        let u = *x;
                        let v = *y;
                        *x = q.add_lazy(u, v);
                        *y = q.mul_shoup_lazy(u + two_q - v, s, s_shoup);
                    }
                }
                t <<= 1;
            }
        }
        // Phase 2: strided stages (span t ≥ mb) per column panel, the fused N⁻¹ last stage
        // included.
        let w = mb.min(PANEL_WIDTH);
        for c0 in (0..mb).step_by(w) {
            let mut t = mb;
            while t < n / 2 {
                let h = n / (2 * t);
                for (i, group) in values.chunks_exact_mut(2 * t).enumerate() {
                    let s = self.psi_inv_rev[h + i];
                    let s_shoup = self.psi_inv_rev_shoup[h + i];
                    let (lo, hi) = group.split_at_mut(t);
                    let mut u = 0;
                    while u < t {
                        for (x, y) in lo[u + c0..u + c0 + w]
                            .iter_mut()
                            .zip(hi[u + c0..u + c0 + w].iter_mut())
                        {
                            let a = *x;
                            let v = *y;
                            *x = q.add_lazy(a, v);
                            *y = q.mul_shoup_lazy(a + two_q - v, s, s_shoup);
                        }
                        u += mb;
                    }
                }
                t <<= 1;
            }
            // Fused last stage (t = n/2) for this panel.
            let t = n / 2;
            let (lo, hi) = values.split_at_mut(t);
            let mut u = 0;
            while u < t {
                for (x, y) in lo[u + c0..u + c0 + w]
                    .iter_mut()
                    .zip(hi[u + c0..u + c0 + w].iter_mut())
                {
                    let a = *x;
                    let v = *y;
                    *x = q.mul_shoup_lazy(q.add_lazy(a, v), self.degree_inv, self.degree_inv_shoup);
                    *y = q.mul_shoup_lazy(
                        a + two_q - v,
                        self.psi_inv_last_fused,
                        self.psi_inv_last_fused_shoup,
                    );
                }
                u += mb;
            }
        }
        for v in values.iter_mut() {
            *v = q.reduce_2q(*v);
        }
    }

    /// The pre-refactor eager forward transform (fully reduced after every butterfly), kept
    /// as the scalar correctness and performance baseline for the lazy [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_reference(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                let s_shoup = self.psi_rev_shoup[m + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = q.mul_shoup(values[j + t], s, s_shoup);
                    values[j] = q.add(u, v);
                    values[j + t] = q.sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    /// The pre-refactor eager inverse transform (fully reduced after every butterfly, with a
    /// separate `N⁻¹` scaling sweep), kept as the scalar correctness and performance baseline
    /// for the lazy [`NttTable::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn inverse_reference(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                let s_shoup = self.psi_inv_rev_shoup[h + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = values[j + t];
                    values[j] = q.add(u, v);
                    values[j + t] = q.mul_shoup(q.sub(u, v), s, s_shoup);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for v in values.iter_mut() {
            *v = q.mul_shoup(*v, self.degree_inv, self.degree_inv_shoup);
        }
    }

    /// Negacyclic polynomial multiplication via NTT: `a * b mod (x^N + 1, q)`.
    ///
    /// Exposed mostly for testing and for the CPU baseline; the evaluator performs the same
    /// steps with explicit representation management.
    pub fn negacyclic_multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = self.modulus.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Finds a primitive root of unity of exact order `order` modulo `q` (order must divide `q-1`).
fn find_primitive_root(modulus: &Modulus, order: u64) -> Result<u64> {
    let q = modulus.value();
    debug_assert_eq!((q - 1) % order, 0);
    let cofactor = (q - 1) / order;
    // Deterministic scan over small candidates; for prime q a generator-derived element of
    // exact order is found quickly.
    for candidate in 2u64..(1 << 20) {
        let root = modulus.pow(candidate % q, cofactor);
        if root == 0 || root == 1 {
            continue;
        }
        // Exact order check: root^(order/2) must be -1 (order is a power of two here).
        if modulus.pow(root, order / 2) == q - 1 {
            return Ok(root);
        }
    }
    Err(MathError::NoPrimitiveRoot { modulus: q, order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn table(log_n: usize, bits: u32) -> NttTable {
        let n = 1 << log_n;
        let q = crate::generate_ntt_prime(bits, n, 0).unwrap();
        NttTable::new(n, Modulus::new(q).unwrap()).unwrap()
    }

    fn random_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..q)).collect()
    }

    /// Schoolbook negacyclic multiplication used as the correctness oracle.
    fn schoolbook_negacyclic(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let prod = modulus.mul(ai, bj);
                let k = i + j;
                if k < n {
                    out[k] = modulus.add(out[k], prod);
                } else {
                    out[k - n] = modulus.sub(out[k - n], prod);
                }
            }
        }
        out
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [3usize, 6, 10, 12] {
            let t = table(log_n, 50);
            let q = t.modulus().value();
            let original = random_poly(1 << log_n, q, log_n as u64);
            let mut values = original.clone();
            t.forward(&mut values);
            t.inverse(&mut values);
            assert_eq!(values, original, "roundtrip failed for log_n = {log_n}");
        }
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        let t = table(6, 50);
        let q = t.modulus().value();
        let a = random_poly(64, q, 1);
        let b = random_poly(64, q, 2);
        let expected = schoolbook_negacyclic(&a, &b, t.modulus());
        assert_eq!(t.negacyclic_multiply(&a, &b), expected);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^(N-1) * x = x^N = -1 in the negacyclic ring.
        let t = table(5, 40);
        let n = t.degree();
        let q = t.modulus().value();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let prod = t.negacyclic_multiply(&a, &b);
        assert_eq!(prod[0], q - 1);
        assert!(prod[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn constant_polynomial_is_fixed_point_of_pointwise_identity() {
        let t = table(8, 45);
        let n = t.degree();
        let mut ones = vec![0u64; n];
        ones[0] = 1;
        let mut transformed = ones.clone();
        t.forward(&mut transformed);
        // NTT of the constant 1 is the all-ones vector (evaluations of 1 everywhere).
        assert!(transformed.iter().all(|&v| v == 1));
    }

    #[test]
    fn linearity_of_transform() {
        let t = table(9, 48);
        let q = t.modulus();
        let a = random_poly(t.degree(), q.value(), 7);
        let b = random_poly(t.degree(), q.value(), 8);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fsum);
        for i in 0..t.degree() {
            assert_eq!(fsum[i], q.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn rejects_bad_degree_and_modulus() {
        let q = crate::generate_ntt_prime(40, 1 << 10, 0).unwrap();
        assert!(NttTable::new(3, Modulus::new(q).unwrap()).is_err());
        // A prime that is 1 mod 2*2^10 may not be 1 mod 2*2^16.
        let small = crate::generate_ntt_prime(40, 1 << 4, 0).unwrap();
        if (small - 1) % (1 << 17) != 0 {
            assert!(NttTable::new(1 << 16, Modulus::new(small).unwrap()).is_err());
        }
    }

    #[test]
    fn fab_paper_degree_roundtrip() {
        // N = 2^16, log q = 54: the paper's parameter set (kept small in iteration count).
        let t = table(16, 54);
        let q = t.modulus().value();
        let original = random_poly(1 << 16, q, 99);
        let mut values = original.clone();
        t.forward(&mut values);
        t.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn lazy_matches_eager_reference_across_degrees() {
        for log_n in 3usize..=12 {
            let t = table(log_n, 50);
            let q = t.modulus().value();
            let poly = random_poly(1 << log_n, q, 1000 + log_n as u64);
            let mut lazy = poly.clone();
            let mut eager = poly.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut eager);
            assert_eq!(lazy, eager, "forward mismatch at log_n = {log_n}");
            t.inverse(&mut lazy);
            t.inverse_reference(&mut eager);
            assert_eq!(lazy, eager, "inverse mismatch at log_n = {log_n}");
            assert_eq!(lazy, poly, "roundtrip mismatch at log_n = {log_n}");
        }
    }

    #[test]
    fn forward_lazy_is_congruent_for_lazy_inputs() {
        // forward_lazy accepts inputs anywhere in [0, 4q) and its outputs, corrected, must
        // match the canonical transform of the canonical input.
        let t = table(8, 50);
        let q = t.modulus();
        let canonical = random_poly(t.degree(), q.value(), 77);
        let mut reference = canonical.clone();
        t.forward(&mut reference);
        for shift in [0u64, 1, 2, 3] {
            // Shift each coefficient by a multiple of q (staying below 4q).
            let mut lazy: Vec<u64> = canonical
                .iter()
                .enumerate()
                .map(|(i, &c)| c + q.value() * ((shift + i as u64) % 4).min(3))
                .collect();
            for v in lazy.iter_mut() {
                if *v >= 4 * q.value() {
                    *v -= q.value();
                }
            }
            t.forward_lazy(&mut lazy);
            for (i, &v) in lazy.iter().enumerate() {
                assert!(
                    (v as u128) < 4 * q.value() as u128,
                    "output {v} out of [0,4q)"
                );
                assert_eq!(q.reduce_4q(v), reference[i], "slot {i} shift {shift}");
            }
        }
    }

    #[test]
    fn fused_scaling_handles_minimum_degree() {
        // N = 2 exercises the inverse path where the fused last stage is the *only* stage.
        let t = table(1, 40);
        let q = t.modulus().value();
        for seed in 0..8 {
            let poly = random_poly(2, q, seed);
            let mut lazy = poly.clone();
            let mut eager = poly.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut eager);
            assert_eq!(lazy, eager);
            t.inverse(&mut lazy);
            t.inverse_reference(&mut eager);
            assert_eq!(lazy, eager);
            assert_eq!(lazy, poly);
        }
    }

    #[test]
    fn default_block_length_is_a_clamped_power_of_two() {
        let block = ntt_block_len();
        assert!(block.is_power_of_two());
        assert!(block >= 2);
        // Repeated calls return the cached decision.
        assert_eq!(block, ntt_block_len());
    }

    #[test]
    fn blocked_transforms_match_linear_at_forced_tiny_blocks() {
        // block = 2 forces the finest possible tiling (one stage group per phase-2 block,
        // maximal strided phase); block ≥ N (and beyond) must degenerate to the linear
        // traversal; non-power-of-two requests are rounded up.
        for log_n in 1usize..=10 {
            let n = 1usize << log_n;
            let t = table(log_n, 50);
            let q = t.modulus().value();
            let poly = random_poly(n, q, 4200 + log_n as u64);
            for block in [2usize, 3, 4, n / 2, n, 2 * n, usize::MAX / 2] {
                if block == 0 {
                    continue;
                }
                let mut blocked = poly.clone();
                let mut linear = poly.clone();
                t.forward_lazy_with_block(&mut blocked, block);
                t.forward_lazy_linear(&mut linear);
                assert_eq!(
                    blocked, linear,
                    "forward_lazy mismatch log_n={log_n} block={block}"
                );
                let mut blocked_f = poly.clone();
                let mut linear_f = poly.clone();
                t.forward_with_block(&mut blocked_f, block);
                t.forward_reference(&mut linear_f);
                assert_eq!(
                    blocked_f, linear_f,
                    "forward mismatch log_n={log_n} block={block}"
                );
                t.inverse_with_block(&mut blocked_f, block);
                let mut linear_inv = linear_f.clone();
                t.inverse_linear(&mut linear_inv);
                t.inverse_reference(&mut linear_f);
                assert_eq!(
                    blocked_f, linear_inv,
                    "inverse mismatch log_n={log_n} block={block}"
                );
                assert_eq!(linear_inv, linear_f, "linear inverse diverged from eager");
                assert_eq!(blocked_f, poly, "roundtrip mismatch log_n={log_n}");
            }
        }
    }

    #[test]
    fn default_paths_match_the_linear_references() {
        // The default forward/forward_lazy/inverse entries route through the probed block
        // length — whatever the probe picked, results must equal the linear traversal.
        for log_n in [1usize, 5, 11] {
            let t = table(log_n, 48);
            let q = t.modulus().value();
            let poly = random_poly(1 << log_n, q, 31 + log_n as u64);
            let mut blocked = poly.clone();
            let mut linear = poly.clone();
            t.forward(&mut blocked);
            t.forward_reference(&mut linear);
            assert_eq!(blocked, linear);
            t.inverse(&mut blocked);
            t.inverse_linear(&mut linear);
            assert_eq!(blocked, linear);
            assert_eq!(blocked, poly);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_blocked_matches_linear_bit_for_bit(
            seed in any::<u64>(),
            log_n in 1usize..13,
            block_shift in 1usize..14,
            bits in 40u32..55,
            prime_index in 0usize..3,
        ) {
            // Random degree × random modulus × random block length: the blocked forward
            // (lazy and canonical) and inverse must be bitwise identical to the retained
            // linear references.
            let n = 1usize << log_n;
            let q = crate::generate_ntt_prime(bits, n, prime_index).unwrap();
            let t = NttTable::new(n, Modulus::new(q).unwrap()).unwrap();
            let poly = random_poly(n, q, seed);
            let block = 1usize << block_shift;
            let mut blocked = poly.clone();
            let mut linear = poly.clone();
            t.forward_lazy_with_block(&mut blocked, block);
            t.forward_lazy_linear(&mut linear);
            prop_assert_eq!(&blocked, &linear);
            // Canonicalise both (same pass), then the blocked inverse against the linear.
            for v in blocked.iter_mut() { *v = t.modulus().reduce_4q(*v); }
            for v in linear.iter_mut() { *v = t.modulus().reduce_4q(*v); }
            t.inverse_with_block(&mut blocked, block);
            t.inverse_linear(&mut linear);
            prop_assert_eq!(&blocked, &linear);
            prop_assert_eq!(blocked, poly);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_lazy_matches_eager_bit_for_bit(seed in any::<u64>(), log_n in 3usize..13) {
            let t = table(log_n, 45);
            let q = t.modulus().value();
            let poly = random_poly(1 << log_n, q, seed);
            let mut lazy = poly.clone();
            let mut eager = poly.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut eager);
            prop_assert_eq!(&lazy, &eager);
            t.inverse(&mut lazy);
            t.inverse_reference(&mut eager);
            prop_assert_eq!(&lazy, &eager);
            prop_assert_eq!(lazy, poly);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_random_polys(seed in any::<u64>()) {
            let t = table(7, 45);
            let q = t.modulus().value();
            let original = random_poly(t.degree(), q, seed);
            let mut values = original.clone();
            t.forward(&mut values);
            t.inverse(&mut values);
            prop_assert_eq!(values, original);
        }

        #[test]
        fn prop_convolution_theorem(seed in any::<u64>()) {
            let t = table(5, 40);
            let q = t.modulus().value();
            let a = random_poly(t.degree(), q, seed);
            let b = random_poly(t.degree(), q, seed.wrapping_add(1));
            let expected = schoolbook_negacyclic(&a, &b, t.modulus());
            prop_assert_eq!(t.negacyclic_multiply(&a, &b), expected);
        }
    }
}
