//! Negacyclic Number Theoretic Transform over `Z_q[x]/(x^N + 1)`.
//!
//! FAB uses a unified Cooley–Tukey datapath for both NTT and inverse NTT (Section 4.5), with
//! 256 radix-2 butterfly units processing 512 coefficients per cycle. This module is the
//! software-reference transform: Harvey-style butterflies with Shoup-precomputed twiddles,
//! merged ψ powers (so no separate pre/post-multiplication is needed for the negacyclic wrap),
//! and tables stored in bit-reversed order.
//!
//! ## Lazy reduction
//!
//! The hot [`NttTable::forward`] / [`NttTable::inverse`] paths use *lazy reduction*: butterfly
//! operands live in the extended domain `[0, 2q)` (forward outputs drift up to `[0, 4q)`), no
//! butterfly performs a full canonical reduction, and a single correction pass at the end maps
//! every coefficient back into `[0, q)`. The inverse transform additionally fuses the `N⁻¹`
//! scaling into its last butterfly stage, so the separate scaling sweep of the textbook
//! algorithm disappears. The pre-refactor eager transforms are kept verbatim as
//! [`NttTable::forward_reference`] / [`NttTable::inverse_reference`]; property tests pin the
//! lazy transforms to them bit for bit, and `fab-bench` measures the speedup between the two.

use crate::{MathError, Modulus, Result};

/// Precomputed NTT tables for one `(N, q)` pair.
///
/// ```
/// use fab_math::{Modulus, NttTable};
///
/// # fn main() -> Result<(), fab_math::MathError> {
/// let n = 1 << 10;
/// let q = fab_math::generate_ntt_prime(50, n, 0)?;
/// let table = NttTable::new(n, Modulus::new(q)?)?;
/// let mut a = vec![0u64; n];
/// a[1] = 1; // x
/// let mut b = a.clone();
/// table.forward(&mut a);
/// table.forward(&mut b);
/// let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| table.modulus().mul(x, y)).collect();
/// table.inverse(&mut prod);
/// // x * x = x^2
/// assert_eq!(prod[2], 1);
/// assert!(prod.iter().enumerate().all(|(i, &c)| i == 2 || c == 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    degree: usize,
    modulus: Modulus,
    /// ψ^brv(i) for the forward transform (ψ a primitive 2N-th root of unity).
    psi_rev: Vec<u64>,
    psi_rev_shoup: Vec<u64>,
    /// ψ^{-brv(i)} for the inverse transform.
    psi_inv_rev: Vec<u64>,
    psi_inv_rev_shoup: Vec<u64>,
    /// N^{-1} mod q.
    degree_inv: u64,
    degree_inv_shoup: u64,
    /// `ψ^{-brv(1)} · N^{-1} mod q`: the last inverse stage's single twiddle with the `N⁻¹`
    /// scaling fused in, so the inverse transform needs no separate scaling pass.
    psi_inv_last_fused: u64,
    psi_inv_last_fused_shoup: u64,
}

impl NttTable {
    /// Builds NTT tables for ring degree `degree` (a power of two) and modulus `q ≡ 1 (mod 2N)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] if `degree` is not a power of two ≥ 2, and
    /// [`MathError::NoPrimitiveRoot`] if the modulus does not support a 2N-th root of unity.
    pub fn new(degree: usize, modulus: Modulus) -> Result<Self> {
        if degree < 2 || !degree.is_power_of_two() {
            return Err(MathError::InvalidDegree {
                degree,
                reason: "NTT degree must be a power of two at least 2",
            });
        }
        let q = modulus.value();
        let two_n = 2 * degree as u64;
        if (q - 1) % two_n != 0 {
            return Err(MathError::NoPrimitiveRoot {
                modulus: q,
                order: two_n,
            });
        }
        let psi = find_primitive_root(&modulus, two_n)?;
        let psi_inv = modulus.inv(psi)?;
        let log_n = degree.trailing_zeros();

        let mut psi_rev = vec![0u64; degree];
        let mut psi_inv_rev = vec![0u64; degree];
        let mut power = 1u64;
        let mut power_inv = 1u64;
        for i in 0..degree {
            let rev = (i as u64).reverse_bits() >> (64 - log_n);
            psi_rev[rev as usize] = power;
            psi_inv_rev[rev as usize] = power_inv;
            power = modulus.mul(power, psi);
            power_inv = modulus.mul(power_inv, psi_inv);
        }
        let psi_rev_shoup = psi_rev
            .iter()
            .map(|&w| modulus.shoup_precompute(w))
            .collect();
        let psi_inv_rev_shoup = psi_inv_rev
            .iter()
            .map(|&w| modulus.shoup_precompute(w))
            .collect();
        let degree_inv = modulus.inv(degree as u64)?;
        let degree_inv_shoup = modulus.shoup_precompute(degree_inv);
        let psi_inv_last_fused = modulus.mul(psi_inv_rev[1], degree_inv);
        let psi_inv_last_fused_shoup = modulus.shoup_precompute(psi_inv_last_fused);
        Ok(Self {
            degree,
            modulus,
            psi_rev,
            psi_rev_shoup,
            psi_inv_rev,
            psi_inv_rev_shoup,
            degree_inv,
            degree_inv_shoup,
            psi_inv_last_fused,
            psi_inv_last_fused_shoup,
        })
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The limb modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation representation).
    ///
    /// Lazy-reduction Harvey butterflies: operands stay in `[0, 4q)` across the whole
    /// butterfly network (each butterfly only conditionally subtracts `2q` from its upper
    /// input) and a single correction pass at the end restores the canonical `[0, q)` range.
    /// Output is bit-for-bit identical to [`NttTable::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward(&self, values: &mut [u64]) {
        self.forward_lazy(values);
        let q = &self.modulus;
        for v in values.iter_mut() {
            *v = q.reduce_4q(*v);
        }
    }

    /// Forward negacyclic NTT **without the final canonicalisation pass**: inputs may be lazy
    /// residues in `[0, 4q)` and outputs stay in `[0, 4q)`, congruent to the canonical
    /// [`NttTable::forward`] output limb-for-limb.
    ///
    /// This is the transform-minimal key-switch entry point: the ModUp conversion hands over
    /// `[0, 2q)` rows directly (skipping its own correction pass), and the u128 KSKIP inner
    /// product consumes the `[0, 4q)` evaluations as-is — its single end-of-accumulation
    /// Barrett reduction absorbs the laziness, so the two correction sweeps between ModUp and
    /// KSKIP disappear entirely.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_lazy(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let two_q = q.two_q();
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for (i, block) in values.chunks_exact_mut(2 * t).enumerate() {
                let s = self.psi_rev[m + i];
                let s_shoup = self.psi_rev_shoup[m + i];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // Invariant: *x, *y ∈ [0, 4q). Reduce x into [0, 2q), keep the twiddle
                    // product lazy in [0, 2q); the outputs land back in [0, 4q).
                    let mut u = *x;
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = q.mul_shoup_lazy(*y, s, s_shoup);
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient representation).
    ///
    /// Lazy-reduction Gentleman–Sande butterflies over the `[0, 2q)` domain, with the `N⁻¹`
    /// scaling fused into the final stage's twiddles (no separate scaling sweep) and one
    /// correction pass at the end. Output is bit-for-bit identical to
    /// [`NttTable::inverse_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn inverse(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let two_q = q.two_q();
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 2 {
            let h = m >> 1;
            for (i, block) in values.chunks_exact_mut(2 * t).enumerate() {
                let s = self.psi_inv_rev[h + i];
                let s_shoup = self.psi_inv_rev_shoup[h + i];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // Invariant: *x, *y ∈ [0, 2q).
                    let u = *x;
                    let v = *y;
                    *x = q.add_lazy(u, v);
                    *y = q.mul_shoup_lazy(u + two_q - v, s, s_shoup);
                }
            }
            t <<= 1;
            m = h;
        }
        // Last stage (m == 2): one butterfly group spanning the whole array, with N⁻¹ fused
        // into both output twiddles.
        debug_assert_eq!(t, n / 2);
        let (lo, hi) = values.split_at_mut(t);
        for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *x;
            let v = *y;
            *x = q.mul_shoup_lazy(q.add_lazy(u, v), self.degree_inv, self.degree_inv_shoup);
            *y = q.mul_shoup_lazy(
                u + two_q - v,
                self.psi_inv_last_fused,
                self.psi_inv_last_fused_shoup,
            );
        }
        for v in values.iter_mut() {
            *v = q.reduce_2q(*v);
        }
    }

    /// The pre-refactor eager forward transform (fully reduced after every butterfly), kept
    /// as the scalar correctness and performance baseline for the lazy [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn forward_reference(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                let s_shoup = self.psi_rev_shoup[m + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = q.mul_shoup(values[j + t], s, s_shoup);
                    values[j] = q.add(u, v);
                    values[j + t] = q.sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    /// The pre-refactor eager inverse transform (fully reduced after every butterfly, with a
    /// separate `N⁻¹` scaling sweep), kept as the scalar correctness and performance baseline
    /// for the lazy [`NttTable::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    pub fn inverse_reference(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "input length must equal N");
        let q = &self.modulus;
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                let s_shoup = self.psi_inv_rev_shoup[h + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = values[j + t];
                    values[j] = q.add(u, v);
                    values[j + t] = q.mul_shoup(q.sub(u, v), s, s_shoup);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for v in values.iter_mut() {
            *v = q.mul_shoup(*v, self.degree_inv, self.degree_inv_shoup);
        }
    }

    /// Negacyclic polynomial multiplication via NTT: `a * b mod (x^N + 1, q)`.
    ///
    /// Exposed mostly for testing and for the CPU baseline; the evaluator performs the same
    /// steps with explicit representation management.
    pub fn negacyclic_multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = self.modulus.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Finds a primitive root of unity of exact order `order` modulo `q` (order must divide `q-1`).
fn find_primitive_root(modulus: &Modulus, order: u64) -> Result<u64> {
    let q = modulus.value();
    debug_assert_eq!((q - 1) % order, 0);
    let cofactor = (q - 1) / order;
    // Deterministic scan over small candidates; for prime q a generator-derived element of
    // exact order is found quickly.
    for candidate in 2u64..(1 << 20) {
        let root = modulus.pow(candidate % q, cofactor);
        if root == 0 || root == 1 {
            continue;
        }
        // Exact order check: root^(order/2) must be -1 (order is a power of two here).
        if modulus.pow(root, order / 2) == q - 1 {
            return Ok(root);
        }
    }
    Err(MathError::NoPrimitiveRoot { modulus: q, order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn table(log_n: usize, bits: u32) -> NttTable {
        let n = 1 << log_n;
        let q = crate::generate_ntt_prime(bits, n, 0).unwrap();
        NttTable::new(n, Modulus::new(q).unwrap()).unwrap()
    }

    fn random_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..q)).collect()
    }

    /// Schoolbook negacyclic multiplication used as the correctness oracle.
    fn schoolbook_negacyclic(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let prod = modulus.mul(ai, bj);
                let k = i + j;
                if k < n {
                    out[k] = modulus.add(out[k], prod);
                } else {
                    out[k - n] = modulus.sub(out[k - n], prod);
                }
            }
        }
        out
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [3usize, 6, 10, 12] {
            let t = table(log_n, 50);
            let q = t.modulus().value();
            let original = random_poly(1 << log_n, q, log_n as u64);
            let mut values = original.clone();
            t.forward(&mut values);
            t.inverse(&mut values);
            assert_eq!(values, original, "roundtrip failed for log_n = {log_n}");
        }
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        let t = table(6, 50);
        let q = t.modulus().value();
        let a = random_poly(64, q, 1);
        let b = random_poly(64, q, 2);
        let expected = schoolbook_negacyclic(&a, &b, t.modulus());
        assert_eq!(t.negacyclic_multiply(&a, &b), expected);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^(N-1) * x = x^N = -1 in the negacyclic ring.
        let t = table(5, 40);
        let n = t.degree();
        let q = t.modulus().value();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let prod = t.negacyclic_multiply(&a, &b);
        assert_eq!(prod[0], q - 1);
        assert!(prod[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn constant_polynomial_is_fixed_point_of_pointwise_identity() {
        let t = table(8, 45);
        let n = t.degree();
        let mut ones = vec![0u64; n];
        ones[0] = 1;
        let mut transformed = ones.clone();
        t.forward(&mut transformed);
        // NTT of the constant 1 is the all-ones vector (evaluations of 1 everywhere).
        assert!(transformed.iter().all(|&v| v == 1));
    }

    #[test]
    fn linearity_of_transform() {
        let t = table(9, 48);
        let q = t.modulus();
        let a = random_poly(t.degree(), q.value(), 7);
        let b = random_poly(t.degree(), q.value(), 8);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fsum);
        for i in 0..t.degree() {
            assert_eq!(fsum[i], q.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn rejects_bad_degree_and_modulus() {
        let q = crate::generate_ntt_prime(40, 1 << 10, 0).unwrap();
        assert!(NttTable::new(3, Modulus::new(q).unwrap()).is_err());
        // A prime that is 1 mod 2*2^10 may not be 1 mod 2*2^16.
        let small = crate::generate_ntt_prime(40, 1 << 4, 0).unwrap();
        if (small - 1) % (1 << 17) != 0 {
            assert!(NttTable::new(1 << 16, Modulus::new(small).unwrap()).is_err());
        }
    }

    #[test]
    fn fab_paper_degree_roundtrip() {
        // N = 2^16, log q = 54: the paper's parameter set (kept small in iteration count).
        let t = table(16, 54);
        let q = t.modulus().value();
        let original = random_poly(1 << 16, q, 99);
        let mut values = original.clone();
        t.forward(&mut values);
        t.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn lazy_matches_eager_reference_across_degrees() {
        for log_n in 3usize..=12 {
            let t = table(log_n, 50);
            let q = t.modulus().value();
            let poly = random_poly(1 << log_n, q, 1000 + log_n as u64);
            let mut lazy = poly.clone();
            let mut eager = poly.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut eager);
            assert_eq!(lazy, eager, "forward mismatch at log_n = {log_n}");
            t.inverse(&mut lazy);
            t.inverse_reference(&mut eager);
            assert_eq!(lazy, eager, "inverse mismatch at log_n = {log_n}");
            assert_eq!(lazy, poly, "roundtrip mismatch at log_n = {log_n}");
        }
    }

    #[test]
    fn forward_lazy_is_congruent_for_lazy_inputs() {
        // forward_lazy accepts inputs anywhere in [0, 4q) and its outputs, corrected, must
        // match the canonical transform of the canonical input.
        let t = table(8, 50);
        let q = t.modulus();
        let canonical = random_poly(t.degree(), q.value(), 77);
        let mut reference = canonical.clone();
        t.forward(&mut reference);
        for shift in [0u64, 1, 2, 3] {
            // Shift each coefficient by a multiple of q (staying below 4q).
            let mut lazy: Vec<u64> = canonical
                .iter()
                .enumerate()
                .map(|(i, &c)| c + q.value() * ((shift + i as u64) % 4).min(3))
                .collect();
            for v in lazy.iter_mut() {
                if *v >= 4 * q.value() {
                    *v -= q.value();
                }
            }
            t.forward_lazy(&mut lazy);
            for (i, &v) in lazy.iter().enumerate() {
                assert!(
                    (v as u128) < 4 * q.value() as u128,
                    "output {v} out of [0,4q)"
                );
                assert_eq!(q.reduce_4q(v), reference[i], "slot {i} shift {shift}");
            }
        }
    }

    #[test]
    fn fused_scaling_handles_minimum_degree() {
        // N = 2 exercises the inverse path where the fused last stage is the *only* stage.
        let t = table(1, 40);
        let q = t.modulus().value();
        for seed in 0..8 {
            let poly = random_poly(2, q, seed);
            let mut lazy = poly.clone();
            let mut eager = poly.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut eager);
            assert_eq!(lazy, eager);
            t.inverse(&mut lazy);
            t.inverse_reference(&mut eager);
            assert_eq!(lazy, eager);
            assert_eq!(lazy, poly);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_lazy_matches_eager_bit_for_bit(seed in any::<u64>(), log_n in 3usize..13) {
            let t = table(log_n, 45);
            let q = t.modulus().value();
            let poly = random_poly(1 << log_n, q, seed);
            let mut lazy = poly.clone();
            let mut eager = poly.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut eager);
            prop_assert_eq!(&lazy, &eager);
            t.inverse(&mut lazy);
            t.inverse_reference(&mut eager);
            prop_assert_eq!(&lazy, &eager);
            prop_assert_eq!(lazy, poly);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_random_polys(seed in any::<u64>()) {
            let t = table(7, 45);
            let q = t.modulus().value();
            let original = random_poly(t.degree(), q, seed);
            let mut values = original.clone();
            t.forward(&mut values);
            t.inverse(&mut values);
            prop_assert_eq!(values, original);
        }

        #[test]
        fn prop_convolution_theorem(seed in any::<u64>()) {
            let t = table(5, 40);
            let q = t.modulus().value();
            let a = random_poly(t.degree(), q, seed);
            let b = random_poly(t.degree(), q, seed.wrapping_add(1));
            let expected = schoolbook_negacyclic(&a, &b, t.modulus());
            prop_assert_eq!(t.negacyclic_multiply(&a, &b), expected);
        }
    }
}
