//! NTT-friendly prime generation.
//!
//! CKKS limbs in FAB are 54-bit primes `q ≡ 1 (mod 2N)` so that the negacyclic NTT over
//! `Z_q[x]/(x^N + 1)` exists. This module provides a deterministic Miller–Rabin test for
//! 64-bit integers and a search routine that scans downward from `2^bits`.

use crate::{MathError, Result};

/// Deterministic Miller–Rabin primality test for 64-bit integers.
///
/// Uses the witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`, which is known to be
/// deterministic for all `n < 3.3 · 10^24` and therefore for every `u64`.
///
/// ```
/// assert!(fab_math::is_prime(17));
/// assert!(!fab_math::is_prime(18));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u64(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod_u64(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod_u64(mut base: u64, mut exp: u64, m: u64) -> u64 {
    base %= m;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod_u64(acc, base, m);
        }
        base = mul_mod_u64(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Generates the `index`-th NTT-friendly prime of the given bit-width for ring degree `degree`.
///
/// The primes satisfy `q ≡ 1 (mod 2·degree)` and are enumerated in decreasing order starting
/// just below `2^bits`, so `(bits, degree, 0)`, `(bits, degree, 1)`, … yield distinct primes.
///
/// # Errors
///
/// Returns [`MathError::InvalidDegree`] if `degree` is not a power of two, and
/// [`MathError::PrimeNotFound`] if the search space below `2^bits` is exhausted.
pub fn generate_ntt_prime(bits: u32, degree: usize, index: usize) -> Result<u64> {
    let primes = generate_ntt_primes(bits, degree, index + 1)?;
    Ok(primes[index])
}

/// Generates `count` distinct NTT-friendly primes of the given bit-width for ring degree `degree`.
///
/// # Errors
///
/// Returns [`MathError::InvalidDegree`] if `degree` is not a power of two or zero, and
/// [`MathError::PrimeNotFound`] if fewer than `count` primes exist below `2^bits` with the
/// required congruence.
///
/// ```
/// let primes = fab_math::generate_ntt_primes(40, 1 << 12, 3).unwrap();
/// assert_eq!(primes.len(), 3);
/// for q in primes {
///     assert!(fab_math::is_prime(q));
///     assert_eq!(q % (2 * (1 << 12)), 1);
/// }
/// ```
pub fn generate_ntt_primes(bits: u32, degree: usize, count: usize) -> Result<Vec<u64>> {
    if degree == 0 || !degree.is_power_of_two() {
        return Err(MathError::InvalidDegree {
            degree,
            reason: "degree must be a nonzero power of two",
        });
    }
    if !(10..=62).contains(&bits) {
        return Err(MathError::InvalidModulus {
            modulus: bits as u64,
            reason: "prime bit-width must be between 10 and 62",
        });
    }
    let two_n = 2 * degree as u64;
    let upper = 1u64 << bits;
    // Largest candidate ≡ 1 (mod 2N) strictly below 2^bits.
    let mut candidate = upper - ((upper - 1) % two_n);
    if candidate >= upper {
        candidate = candidate.saturating_sub(two_n);
    }
    let lower = 1u64 << (bits - 1);
    let mut out = Vec::with_capacity(count);
    while candidate > lower && candidate > two_n {
        if is_prime(candidate) {
            out.push(candidate);
            if out.len() == count {
                return Ok(out);
            }
        }
        candidate -= two_n;
    }
    Err(MathError::PrimeNotFound { bits, degree })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_primes_classified_correctly() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 998244353];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 561, 65535, 998244351];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841] {
            assert!(!is_prime(c), "{c} is a Carmichael number, not prime");
        }
    }

    #[test]
    fn generated_primes_satisfy_congruence() {
        for (bits, log_n) in [(54u32, 16usize), (54, 12), (40, 13), (30, 10), (60, 15)] {
            let n = 1usize << log_n;
            let q = generate_ntt_prime(bits, n, 0).unwrap();
            assert!(is_prime(q));
            assert_eq!(q % (2 * n as u64), 1);
            assert_eq!(64 - q.leading_zeros(), bits);
        }
    }

    #[test]
    fn generated_primes_are_distinct_and_decreasing() {
        let primes = generate_ntt_primes(50, 1 << 14, 8).unwrap();
        assert_eq!(primes.len(), 8);
        for w in primes.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn invalid_degree_rejected() {
        assert!(generate_ntt_primes(54, 0, 1).is_err());
        assert!(generate_ntt_primes(54, 3, 1).is_err());
        assert!(generate_ntt_primes(5, 1 << 12, 1).is_err());
    }

    #[test]
    fn fab_paper_limb_width_has_enough_primes() {
        // The paper needs 32 distinct 54-bit limbs (24 original + 8 extension) at N = 2^16.
        let primes = generate_ntt_primes(54, 1 << 16, 32).unwrap();
        assert_eq!(primes.len(), 32);
    }

    proptest! {
        #[test]
        fn prop_is_prime_matches_trial_division(n in 2u64..200_000) {
            let trial = (2..=((n as f64).sqrt() as u64 + 1)).all(|d| d >= n || n % d != 0) && n >= 2;
            prop_assert_eq!(is_prime(n), trial);
        }
    }
}
