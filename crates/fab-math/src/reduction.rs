//! Hardware-friendly shift-add modular reduction (Algorithm 1 of the FAB paper).
//!
//! FAB replaces Barrett reduction with a modified Will–Ko reduction that uses only shifts and
//! additions, processing `shifts` bits per step. For a `(2·log q − 1)`-bit product and
//! `log q = 54`, the hardware performs the reduction in 12 clock cycles with a 6-bit shift
//! window and a 63-entry precomputed `madd` table (7 KB across all 32 limb moduli).
//!
//! This module is the bit-exact software model of that unit; the accelerator cost model in
//! `fab-core` charges its latency.

use crate::{MathError, Modulus, Result};

/// Default shift window used by the paper (line 1 of Algorithm 1).
pub const DEFAULT_SHIFTS: u32 = 6;

/// Shift-add modular reducer for a fixed modulus (modified Will–Ko, Algorithm 1).
///
/// ```
/// use fab_math::{Modulus, ShiftAddReducer};
///
/// # fn main() -> Result<(), fab_math::MathError> {
/// let q = fab_math::generate_ntt_prime(54, 1 << 12, 0)?;
/// let reducer = ShiftAddReducer::new(Modulus::new(q)?, 6)?;
/// let a: u128 = (q as u128 - 1) * (q as u128 - 2);
/// assert_eq!(reducer.reduce(a) as u128, a % q as u128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShiftAddReducer {
    modulus: Modulus,
    log_q: u32,
    shifts: u32,
    /// `madd[i-1] = (i << log_q) mod q` for `i = 1 .. 2^shifts - 1` (line 2 of Algorithm 1).
    madd: Vec<u64>,
}

impl ShiftAddReducer {
    /// Builds the reducer, precomputing the `madd` table offline as the paper prescribes.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidModulus`] if `shifts` is zero or larger than 16 (the table
    /// would no longer be "inexpensive" storage).
    pub fn new(modulus: Modulus, shifts: u32) -> Result<Self> {
        if shifts == 0 || shifts > 16 {
            return Err(MathError::InvalidModulus {
                modulus: modulus.value(),
                reason: "shift window must be between 1 and 16 bits",
            });
        }
        let log_q = modulus.bits();
        let table_len = (1usize << shifts) - 1;
        let mut madd = Vec::with_capacity(table_len);
        for i in 1..=table_len as u64 {
            // (i << log_q) mod q
            madd.push(modulus.reduce_u128((i as u128) << log_q));
        }
        Ok(Self {
            modulus,
            log_q,
            shifts,
            madd,
        })
    }

    /// Returns the shift window size in bits.
    pub fn shifts(&self) -> u32 {
        self.shifts
    }

    /// Returns the number of precomputed `madd` entries (`2^shifts − 1`).
    pub fn table_len(&self) -> usize {
        self.madd.len()
    }

    /// Returns the storage footprint of the `madd` table in bytes (one `log q`-bit word per entry,
    /// rounded up to bytes), as reported by the paper for the 32-limb configuration.
    pub fn table_bytes(&self) -> usize {
        self.madd.len() * (self.log_q as usize).div_ceil(8)
    }

    /// Returns the number of shift-add iterations the hardware performs (`ceil(log q / shifts)`),
    /// i.e. the latency in "shift steps" before the final correction addition.
    pub fn iterations(&self) -> u32 {
        self.log_q.div_ceil(self.shifts)
    }

    /// Reduces a `(2·log q)`-bit product into `[0, q)` using only shifts and additions.
    ///
    /// Follows Algorithm 1: the input is split into `A[1]·2^{log q} + A[0]`, the high part is
    /// folded down `shifts` bits at a time via the `madd` table, then the two halves are added
    /// and a final correction brings the result into range.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the input fits in `2·log q` bits (the width of a modular product).
    pub fn reduce(&self, a: u128) -> u64 {
        debug_assert!(a >> (2 * self.log_q) == 0, "input must fit in 2*log_q bits");
        let mask = (1u128 << self.log_q) - 1;
        let a0 = (a & mask) as u64;
        let mut a1 = (a >> self.log_q) as u64;
        let q = self.modulus.value();
        let mut count = 0u32;
        // Fold A[1]·2^{log q} into the log_q-bit window, `shifts` bits per step. When the shift
        // window does not divide log q exactly, the final step shifts by the remaining bits so
        // the total shift is exactly log q (the hardware fixes shifts = 6 and log q = 54, where
        // the division is exact and every step is full-width).
        while count < self.log_q {
            let step = self.shifts.min(self.log_q - count);
            let shifted = (a1 as u128) << step;
            let carry = (shifted >> self.log_q) as u64;
            let mut as1 = (shifted & mask) as u64;
            if carry > 0 {
                // carry fits in `shifts` bits because a1 is kept below 2^{log q} and corrected
                // against q after every step (hardware correction step, Section 4.1).
                as1 = as1.wrapping_add(self.madd[(carry - 1) as usize]);
            }
            // Correction: keep the accumulator within the log_q-bit window so the next carry
            // stays within the shift window (multi-word 27-bit additions in hardware).
            while as1 >> self.log_q != 0 {
                as1 -= q;
            }
            a1 = as1;
            count += step;
        }
        let mut c = a1 as u128 + a0 as u128;
        while c >= q as u128 {
            c -= q as u128;
        }
        c as u64
    }

    /// Modular multiplication implemented as integer multiply followed by [`Self::reduce`],
    /// mirroring the two pipelined stages of the FAB modular multiplier.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.modulus.value() && b < self.modulus.value());
        self.reduce(a as u128 * b as u128)
    }

    /// Returns the underlying modulus.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reducer(bits: u32, shifts: u32) -> ShiftAddReducer {
        let q = crate::generate_ntt_prime(bits, 1 << 10, 0).unwrap();
        ShiftAddReducer::new(Modulus::new(q).unwrap(), shifts).unwrap()
    }

    #[test]
    fn paper_configuration_table_size() {
        // log q = 54, shifts = 6 → 63 entries of 54 bits ≈ 7 bytes each; 32 moduli ≈ 7 KB total.
        let r = reducer(54, 6);
        assert_eq!(r.table_len(), 63);
        assert_eq!(r.iterations(), 9);
        let per_modulus = r.table_bytes();
        let total_for_32_limbs = per_modulus * 32;
        assert!(total_for_32_limbs <= 16 * 1024, "paper reports ~7 KB total");
    }

    #[test]
    fn reduce_matches_modulo_on_edge_cases() {
        let r = reducer(54, 6);
        let q = r.modulus().value() as u128;
        let cases = [
            0u128,
            1,
            q - 1,
            q,
            q + 1,
            (q - 1) * (q - 1),
            (q - 1) * (q - 2),
            q * (q - 1) / 2,
        ];
        for a in cases {
            assert_eq!(r.reduce(a) as u128, a % q, "failed for input {a}");
        }
    }

    #[test]
    fn mul_matches_modulus_mul() {
        let r = reducer(54, 6);
        let m = r.modulus().clone();
        let a = m.value() - 12345;
        let b = m.value() - 67;
        assert_eq!(r.mul(a, b), m.mul(a, b));
    }

    #[test]
    fn various_shift_windows_agree() {
        for shifts in [1u32, 2, 3, 4, 6, 8, 9] {
            let r = reducer(54, shifts);
            let q = r.modulus().value() as u128;
            let a = (q - 3) * (q - 7);
            assert_eq!(r.reduce(a) as u128, a % q, "shifts = {shifts}");
        }
    }

    #[test]
    fn rejects_invalid_shift_window() {
        let q = crate::generate_ntt_prime(54, 1 << 10, 0).unwrap();
        let m = Modulus::new(q).unwrap();
        assert!(ShiftAddReducer::new(m.clone(), 0).is_err());
        assert!(ShiftAddReducer::new(m, 17).is_err());
    }

    #[test]
    fn works_for_smaller_limb_widths() {
        // HEAX comparison parameters use smaller moduli (log Q = 438 split across limbs).
        for bits in [30u32, 36, 40, 45, 50, 54, 60] {
            let r = reducer(bits, 6);
            let q = r.modulus().value() as u128;
            let a = (q - 1) * (q - 1);
            assert_eq!(r.reduce(a) as u128, a % q, "bits = {bits}");
        }
    }

    proptest! {
        #[test]
        fn prop_reduce_matches_modulo(a in any::<u64>(), b in any::<u64>()) {
            let r = reducer(54, 6);
            let q = r.modulus().value();
            let prod = (a % q) as u128 * (b % q) as u128;
            prop_assert_eq!(r.reduce(prod) as u128, prod % q as u128);
        }

        #[test]
        fn prop_reduce_matches_for_random_windows(a in any::<u64>(), b in any::<u64>(), s in 1u32..10) {
            let r = reducer(54, s);
            let q = r.modulus().value();
            let prod = (a % q) as u128 * (b % q) as u128;
            prop_assert_eq!(r.reduce(prod) as u128, prod % q as u128);
        }
    }
}
