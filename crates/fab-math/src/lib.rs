//! # fab-math
//!
//! Arithmetic substrate for the FAB reproduction: word-sized modular arithmetic for
//! NTT-friendly primes, the paper's hardware-friendly shift-add modular reduction
//! (Algorithm 1), multi-word (DSP-style) arithmetic, NTT/iNTT over negacyclic rings,
//! the complex "special" FFT used by CKKS encoding, and Galois/automorphism index maps.
//!
//! All higher-level crates (`fab-rns`, `fab-ckks`, `fab-core`) build on these kernels.
//!
//! ## Lazy-reduction invariants
//!
//! The hot paths work in an extended residue domain instead of reducing canonically after
//! every operation:
//!
//! * [`Modulus::mul_shoup_lazy`] accepts **any** `u64` left operand and returns a residue in
//!   `[0, 2q)`; [`Modulus::add_lazy`] closes `[0, 2q)` under addition.
//! * [`NttTable::forward`] keeps butterfly operands in `[0, 4q)` and corrects once at the
//!   end; [`NttTable::inverse`] works in `[0, 2q)` and fuses the `N⁻¹` scaling into its last
//!   stage. Both are pinned bit-for-bit to the eager
//!   [`NttTable::forward_reference`] / [`NttTable::inverse_reference`] baselines.
//! * `q < 2^62` ([`MAX_MODULUS_BITS`]) guarantees `4q` fits in a `u64`, which is what makes
//!   the whole scheme branch-free.
//!
//! ```
//! use fab_math::{Modulus, NttTable};
//!
//! # fn main() -> Result<(), fab_math::MathError> {
//! let q = fab_math::generate_ntt_prime(54, 1 << 12, 0)?;
//! let modulus = Modulus::new(q)?;
//! let table = NttTable::new(1 << 12, modulus.clone())?;
//! let mut poly = vec![1u64; 1 << 12];
//! table.forward(&mut poly);
//! table.inverse(&mut poly);
//! assert!(poly.iter().all(|&c| c == 1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automorph;
mod complex;
mod error;
mod fft;
mod modulus;
mod multiword;
mod ntt;
mod prime;
mod reduction;

pub use automorph::{
    apply_automorphism, bit_reverse_indices, bit_reverse_permute, fab_rotation_index,
    galois_element_for_conjugation, galois_element_for_rotation, AutomorphismMap,
    EvalAutomorphismMap,
};
pub use complex::Complex64;
pub use error::MathError;
pub use fft::SpecialFft;
pub use modulus::{Modulus, MAX_MODULUS_BITS};
pub use multiword::{MultiWord54, WORD18_BITS, WORD27_BITS};
pub use ntt::{ntt_block_len, NttTable, DEFAULT_NTT_BLOCK, NTT_BLOCK_LINEAR};
pub use prime::{generate_ntt_prime, generate_ntt_primes, is_prime};
pub use reduction::{ShiftAddReducer, DEFAULT_SHIFTS};

/// Result alias used throughout the math crate.
pub type Result<T> = std::result::Result<T, MathError>;
