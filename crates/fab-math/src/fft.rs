//! The "special" complex FFT used by CKKS encoding/decoding and by the homomorphic
//! CoeffToSlot / SlotToCoeff linear transforms in bootstrapping.
//!
//! CKKS maps a vector of `n = N/2` complex slots to a real polynomial through the canonical
//! embedding restricted to the orbit of 5 modulo 2N (Section 2.1.2 of the paper: "during CKKS
//! encryption and decryption, a complex FFT must be run … during bootstrapping, this complex
//! FFT must be homomorphically evaluated"). This module provides both the fast O(n log n)
//! transform (HEAAN-style) and a direct O(n^2) evaluation used as a testing oracle and to
//! build the bootstrapping matrices.

use crate::{Complex64, MathError, Result};

/// Precomputed roots of unity and rotation-group tables for the special FFT at a fixed degree.
///
/// ```
/// use fab_math::{Complex64, SpecialFft};
///
/// # fn main() -> Result<(), fab_math::MathError> {
/// let fft = SpecialFft::new(1 << 6)?; // N = 64, n = 32 slots
/// let slots: Vec<Complex64> = (0..32).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
/// let mut w = slots.clone();
/// fft.inverse(&mut w);
/// fft.forward(&mut w);
/// for (a, b) in w.iter().zip(&slots) {
///     assert!((*a - *b).norm() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpecialFft {
    /// Ring degree `N`.
    degree: usize,
    /// Number of slots `n = N/2`.
    slots: usize,
    /// `M = 2N`.
    m: usize,
    /// `ksi_pows[j] = exp(2πi · j / M)`, for `j = 0..M`.
    ksi_pows: Vec<Complex64>,
    /// `rot_group[i] = 5^i mod M`.
    rot_group: Vec<usize>,
}

impl SpecialFft {
    /// Builds the tables for ring degree `degree` (power of two ≥ 4); the slot count is `N/2`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] if `degree` is not a power of two at least 4.
    pub fn new(degree: usize) -> Result<Self> {
        if degree < 4 || !degree.is_power_of_two() {
            return Err(MathError::InvalidDegree {
                degree,
                reason: "special FFT degree must be a power of two at least 4",
            });
        }
        let slots = degree / 2;
        let m = 2 * degree;
        let mut ksi_pows = Vec::with_capacity(m + 1);
        for j in 0..=m {
            let theta = 2.0 * std::f64::consts::PI * j as f64 / m as f64;
            ksi_pows.push(Complex64::from_polar(1.0, theta));
        }
        let mut rot_group = Vec::with_capacity(slots);
        let mut five_pow = 1usize;
        for _ in 0..slots {
            rot_group.push(five_pow);
            five_pow = (five_pow * 5) % m;
        }
        Ok(Self {
            degree,
            slots,
            m,
            ksi_pows,
            rot_group,
        })
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of complex slots `n = N/2`.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Returns `5^i mod 2N`, the Galois exponent associated with slot rotation by `i`.
    pub fn rotation_group(&self) -> &[usize] {
        &self.rot_group
    }

    /// Forward special FFT: polynomial-side values → slot values (used by decoding).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not the full slot count.
    pub fn forward(&self, values: &mut [Complex64]) {
        assert_eq!(values.len(), self.slots, "expected N/2 slot values");
        let n = values.len();
        bit_reverse_in_place(values);
        let mut len = 2usize;
        while len <= n {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..n).step_by(len) {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * (self.m / lenq);
                    let u = values[i + j];
                    let v = values[i + j + lenh] * self.ksi_pows[idx];
                    values[i + j] = u + v;
                    values[i + j + lenh] = u - v;
                }
            }
            len <<= 1;
        }
    }

    /// Inverse special FFT: slot values → polynomial-side values (used by encoding).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not the full slot count.
    pub fn inverse(&self, values: &mut [Complex64]) {
        assert_eq!(values.len(), self.slots, "expected N/2 slot values");
        let n = values.len();
        let mut len = n;
        while len >= 2 {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..n).step_by(len) {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * (self.m / lenq);
                    let u = values[i + j] + values[i + j + lenh];
                    let v = (values[i + j] - values[i + j + lenh]) * self.ksi_pows[idx];
                    values[i + j] = u;
                    values[i + j + lenh] = v;
                }
            }
            len >>= 1;
        }
        bit_reverse_in_place(values);
        let scale = 1.0 / n as f64;
        for v in values.iter_mut() {
            *v = *v * scale;
        }
    }

    /// Direct evaluation of the canonical-embedding matrix `U` applied to `values`
    /// (`out[j] = Σ_i values[i] · ζ^{rot_group[j]·i}` restricted to the first N/2 powers plus the
    /// conjugate half). Quadratic cost — used as a correctness oracle for [`Self::forward`] and
    /// to materialise the CoeffToSlot/SlotToCoeff matrices for bootstrapping.
    pub fn embedding_matrix_row(&self, slot: usize) -> Vec<Complex64> {
        assert!(slot < self.slots);
        let mut row = Vec::with_capacity(self.degree);
        let root_exp = self.rot_group[slot];
        for i in 0..self.degree {
            row.push(self.ksi_pows[(root_exp * i) % self.m]);
        }
        row
    }

    /// Decodes a real coefficient vector (length `N`, scaled floats) into complex slots by
    /// evaluating the canonical embedding directly. Quadratic cost; testing oracle.
    pub fn decode_direct(&self, coeffs: &[f64]) -> Vec<Complex64> {
        assert_eq!(coeffs.len(), self.degree);
        (0..self.slots)
            .map(|j| {
                let row = self.embedding_matrix_row(j);
                let mut acc = Complex64::zero();
                for (c, r) in coeffs.iter().zip(row.iter()) {
                    acc += *r * *c;
                }
                acc
            })
            .collect()
    }
}

fn bit_reverse_in_place(values: &mut [Complex64]) {
    let n = values.len();
    if n < 2 {
        return;
    }
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - log_n);
        let j = j as usize;
        if i < j {
            values.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [2usize, 4, 6, 8, 10] {
            let fft = SpecialFft::new(1 << log_n).unwrap();
            let slots = fft.slots();
            let original: Vec<Complex64> = (0..slots)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut values = original.clone();
            fft.inverse(&mut values);
            fft.forward(&mut values);
            for (a, b) in values.iter().zip(&original) {
                assert!((*a - *b).norm() < 1e-8, "roundtrip failed at log_n={log_n}");
            }
        }
    }

    #[test]
    fn forward_matches_direct_embedding() {
        // forward(ifft-side coefficients interpreted as slot evaluation) should agree with the
        // direct canonical-embedding evaluation of the corresponding real polynomial.
        let fft = SpecialFft::new(1 << 5).unwrap();
        let n = fft.slots();
        let slots: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.1 * i as f64, -0.05 * i as f64))
            .collect();
        // Encode to polynomial-side values then back — the embedding property we rely on for
        // CKKS correctness is exactly this round trip, checked against the direct evaluation
        // through real coefficients.
        let mut w = slots.clone();
        fft.inverse(&mut w);
        // Build the real coefficient vector the encoder would produce (without scaling/rounding).
        let mut coeffs = vec![0.0f64; fft.degree()];
        for i in 0..n {
            coeffs[i] = w[i].re;
            coeffs[i + n] = w[i].im;
        }
        let decoded = fft.decode_direct(&coeffs);
        for (a, b) in decoded.iter().zip(&slots) {
            assert!((*a - *b).norm() < 1e-8, "direct embedding disagrees");
        }
    }

    #[test]
    fn rotation_group_structure() {
        let fft = SpecialFft::new(1 << 6).unwrap();
        let m = 2 * fft.degree();
        let rg = fft.rotation_group();
        assert_eq!(rg[0], 1);
        for w in rg.windows(2) {
            assert_eq!(w[1], (w[0] * 5) % m);
        }
        // All elements are odd (units mod 2N).
        assert!(rg.iter().all(|&g| g % 2 == 1));
    }

    #[test]
    fn rejects_bad_degree() {
        assert!(SpecialFft::new(0).is_err());
        assert!(SpecialFft::new(2).is_err());
        assert!(SpecialFft::new(12).is_err());
    }

    #[test]
    fn linearity_of_inverse_transform() {
        let fft = SpecialFft::new(1 << 6).unwrap();
        let n = fft.slots();
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(-(i as f64), 2.0)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        fft.inverse(&mut fa);
        fft.inverse(&mut fb);
        fft.inverse(&mut fsum);
        for i in 0..n {
            assert!((fsum[i] - (fa[i] + fb[i])).norm() < 1e-9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(-100.0f64..100.0, 32)) {
            let fft = SpecialFft::new(64).unwrap();
            let original: Vec<Complex64> = values
                .iter()
                .map(|&v| Complex64::new(v, -v * 0.5))
                .collect();
            let mut w = original.clone();
            fft.inverse(&mut w);
            fft.forward(&mut w);
            for (a, b) in w.iter().zip(&original) {
                prop_assert!((*a - *b).norm() < 1e-7);
            }
        }
    }
}
