//! Word-sized modular arithmetic for NTT-friendly primes.
//!
//! FAB operates on 54-bit prime limbs (Section 2.2 of the paper). This module provides
//! the software-reference arithmetic: Barrett-style reduction via 128-bit intermediates,
//! Shoup multiplication for fixed operands (twiddle factors), exponentiation and inverses.

use crate::{MathError, Result};

/// Maximum supported modulus bit-width. Products of two operands must fit in `u128`.
pub const MAX_MODULUS_BITS: u32 = 62;

/// A word-sized odd modulus together with precomputed constants for fast reduction.
///
/// The modulus does not need to be prime for the plain arithmetic operations, but
/// [`Modulus::inv`] and [`Modulus::pow`]-based inverses assume primality (Fermat inversion)
/// and the NTT requires `q ≡ 1 (mod 2N)`.
///
/// Besides the canonical `[0, q)` operations, the modulus exposes *lazy* primitives
/// ([`Modulus::mul_shoup_lazy`], [`Modulus::add_lazy`]) whose results live in the extended
/// domain `[0, 2q)`; the lazy-reduction NTT keeps whole butterfly networks in that domain and
/// corrects once at the end ([`Modulus::reduce_2q`] / [`Modulus::reduce_4q`]).
///
/// ```
/// use fab_math::Modulus;
///
/// # fn main() -> Result<(), fab_math::MathError> {
/// let q = Modulus::new(0x3F_FFFF_FFFF_FFC1)?; // not necessarily prime, just a demo value
/// let a = q.reduce_u128(1 << 90);
/// assert!(a < q.value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// `2q`, precomputed for the lazy `[0, 2q)` domain (fits: q < 2^62).
    twice_value: u64,
    bits: u32,
    /// floor(2^128 / q), stored as (high 64 bits, low 64 bits) — classic Barrett constant.
    /// The high half is exactly floor(2^64 / q), which single-word reduction reuses.
    barrett_hi: u64,
    barrett_lo: u64,
}

impl Modulus {
    /// Creates a new modulus with precomputed Barrett constants.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidModulus`] if `value < 2` or `value` needs more than
    /// [`MAX_MODULUS_BITS`] bits.
    pub fn new(value: u64) -> Result<Self> {
        if value < 2 {
            return Err(MathError::InvalidModulus {
                modulus: value,
                reason: "modulus must be at least 2",
            });
        }
        let bits = 64 - value.leading_zeros();
        if bits > MAX_MODULUS_BITS {
            return Err(MathError::InvalidModulus {
                modulus: value,
                reason: "modulus must fit in 62 bits",
            });
        }
        // floor(2^128 / q) = floor((2^128 - 1) / q), plus one iff q divides 2^128 exactly
        // (equivalently, iff (2^128 - 1) mod q == q - 1 — only possible for powers of two).
        let q = value as u128;
        let floor_div = if (u128::MAX % q) == q - 1 {
            (u128::MAX / q) + 1
        } else {
            u128::MAX / q
        };
        Ok(Self {
            value,
            twice_value: value << 1,
            bits,
            barrett_hi: (floor_div >> 64) as u64,
            barrett_lo: floor_div as u64,
        })
    }

    /// Returns the raw modulus value `q`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Returns the bit-width of the modulus.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Returns `2q`, the upper bound of the lazy residue domain.
    #[inline]
    pub fn two_q(&self) -> u64 {
        self.twice_value
    }

    /// Reduces an arbitrary `u64` into `[0, q)` via single-word Barrett reduction (no
    /// hardware division): the quotient estimate `floor(a · floor(2^64/q) / 2^64)` is off by
    /// at most 2, corrected with conditional subtractions.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        // barrett_hi == floor(2^64 / q) exactly (high half of floor(2^128 / q)).
        let quotient = ((a as u128 * self.barrett_hi as u128) >> 64) as u64;
        let mut r = a.wrapping_sub(quotient.wrapping_mul(self.value));
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Reduces an arbitrary `u128` into the *lazy* domain `[0, 2q)` (Barrett quotient
    /// estimate, at most one correction) — congruent to `a mod q` but not canonical.
    ///
    /// This is the single reduction at the end of a u128 key-switch inner product: the
    /// accumulator is reduced once per coefficient (instead of once per digit) and the lazy
    /// result feeds straight into the `[0, 2q)`-domain inverse NTT, whose own final pass
    /// canonicalises it.
    #[inline]
    pub fn reduce_u128_lazy(&self, a: u128) -> u64 {
        let q = self.value as u128;
        let a_lo = a as u64 as u128;
        let a_hi = (a >> 64) as u64 as u128;
        let m_lo = self.barrett_lo as u128;
        let m_hi = self.barrett_hi as u128;
        let lo_lo = a_lo * m_lo;
        let lo_hi = a_lo * m_hi;
        let hi_lo = a_hi * m_lo;
        let hi_hi = a_hi * m_hi;
        let mid = (lo_lo >> 64) + (lo_hi & 0xFFFF_FFFF_FFFF_FFFF) + (hi_lo & 0xFFFF_FFFF_FFFF_FFFF);
        let quotient = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
        // The Barrett estimate undershoots by at most 2, so r < 3q; one conditional
        // subtraction of 2q leaves the lazy residue below 2q.
        let r = a.wrapping_sub(quotient.wrapping_mul(q));
        debug_assert!(r < 3 * q);
        let r = r as u64;
        if r >= self.twice_value {
            r - self.value - self.value
        } else {
            r
        }
    }

    /// How many products `x · k` with `x < 4q` (a doubly-lazy NTT output) and `k < q` (a
    /// canonical key residue) can be summed into a `u128` accumulator before it may overflow.
    ///
    /// This is the overflow-fold bound of the lazy key-switch inner product: with `β` digits
    /// and `β >` this capacity, the accumulator must be folded (reduced mod `q`) periodically.
    /// Because the modulus is capped at [`MAX_MODULUS_BITS`] = 62 bits, the capacity is always
    /// at least 4, so a fold frees enough headroom to keep making progress.
    #[inline]
    pub fn u128_mac_capacity(&self) -> usize {
        let term = (4 * self.value as u128 - 1).saturating_mul(self.value as u128 - 1);
        usize::try_from(u128::MAX / term.max(1)).unwrap_or(usize::MAX)
    }

    /// Reduces an arbitrary `u128` into `[0, q)` using the precomputed Barrett constant.
    #[inline]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        // Barrett: estimate quotient via the top 128 bits of a * floor(2^128/q) >> 128,
        // computed with 64x64 partial products.
        let q = self.value as u128;
        let a_lo = a as u64 as u128;
        let a_hi = (a >> 64) as u64 as u128;
        let m_lo = self.barrett_lo as u128;
        let m_hi = self.barrett_hi as u128;
        let lo_lo = a_lo * m_lo;
        let lo_hi = a_lo * m_hi;
        let hi_lo = a_hi * m_lo;
        let hi_hi = a_hi * m_hi;
        let mid = (lo_lo >> 64) + (lo_hi & 0xFFFF_FFFF_FFFF_FFFF) + (hi_lo & 0xFFFF_FFFF_FFFF_FFFF);
        let quotient = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
        let mut r = a.wrapping_sub(quotient.wrapping_mul(q));
        // Barrett estimate can be off by at most 2.
        while r >= q {
            r -= q;
        }
        r as u64
    }

    /// Modular addition of two residues in `[0, q)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both operands are already reduced.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of two residues in `[0, q)`.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a residue in `[0, q)`.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of two residues in `[0, q)`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add: `a*b + c mod q`.
    #[inline]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value && c < self.value);
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Precomputes the Shoup constant `floor(b · 2^64 / q)` for a fixed multiplicand `b`.
    #[inline]
    pub fn shoup_precompute(&self, b: u64) -> u64 {
        debug_assert!(b < self.value);
        (((b as u128) << 64) / self.value as u128) as u64
    }

    /// Shoup modular multiplication `a · b mod q`, where `b_shoup` was produced by
    /// [`Modulus::shoup_precompute`] for `b`. This mirrors the fixed-operand multiplication
    /// used for twiddle factors in the FAB NTT datapath.
    #[inline]
    pub fn mul_shoup(&self, a: u64, b: u64, b_shoup: u64) -> u64 {
        let r = self.mul_shoup_lazy(a, b, b_shoup);
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Lazy Shoup multiplication: same as [`Modulus::mul_shoup`] but the final conditional
    /// subtraction is skipped, so the result lives in `[0, 2q)`. The left operand `a` may be
    /// **any** `u64` (in particular a lazy residue in `[0, 4q)`): the Shoup quotient estimate
    /// `floor(a·b_shoup/2^64)` differs from the true quotient by less than `1 + a/2^64 < 2`
    /// whenever `b < q`, so the remainder stays below `2q` unconditionally.
    ///
    /// This is the butterfly workhorse of the lazy-reduction NTT: one multiply-high, two
    /// multiply-lows, zero branches.
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, b: u64, b_shoup: u64) -> u64 {
        let q_hat = ((a as u128 * b_shoup as u128) >> 64) as u64;
        (a.wrapping_mul(b)).wrapping_sub(q_hat.wrapping_mul(self.value))
    }

    /// Lazy addition over the `[0, 2q)` domain: both operands and the result are lazy
    /// residues below `2q` (a single conditional subtraction of `2q`, never of `q`).
    #[inline]
    pub fn add_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twice_value && b < self.twice_value);
        let s = a + b;
        if s >= self.twice_value {
            s - self.twice_value
        } else {
            s
        }
    }

    /// Corrects a lazy residue in `[0, 2q)` into the canonical `[0, q)`.
    #[inline]
    pub fn reduce_2q(&self, a: u64) -> u64 {
        debug_assert!(a < self.twice_value);
        if a >= self.value {
            a - self.value
        } else {
            a
        }
    }

    /// Corrects a doubly-lazy residue in `[0, 4q)` into the canonical `[0, q)` (the forward
    /// lazy NTT leaves coefficients in this domain).
    #[inline]
    pub fn reduce_4q(&self, a: u64) -> u64 {
        debug_assert!((a as u128) < 2 * self.twice_value as u128);
        let a = if a >= self.twice_value {
            a - self.twice_value
        } else {
            a
        };
        if a >= self.value {
            a - self.value
        } else {
            a
        }
    }

    /// Modular exponentiation `base^exp mod q` by square-and-multiply.
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] if `gcd(a, q) != 1`.
    pub fn inv(&self, a: u64) -> Result<u64> {
        let a = self.reduce(a);
        if a == 0 {
            return Err(MathError::NotInvertible {
                value: a,
                modulus: self.value,
            });
        }
        let (mut t, mut new_t): (i128, i128) = (0, 1);
        let (mut r, mut new_r): (i128, i128) = (self.value as i128, a as i128);
        while new_r != 0 {
            let quotient = r / new_r;
            let tmp_t = t - quotient * new_t;
            t = new_t;
            new_t = tmp_t;
            let tmp_r = r - quotient * new_r;
            r = new_r;
            new_r = tmp_r;
        }
        if r > 1 {
            return Err(MathError::NotInvertible {
                value: a,
                modulus: self.value,
            });
        }
        if t < 0 {
            t += self.value as i128;
        }
        Ok(t as u64)
    }

    /// Maps a signed integer into the canonical residue `[0, q)`.
    #[inline]
    pub fn reduce_i64(&self, a: i64) -> u64 {
        let q = self.value as i128;
        let mut r = (a as i128) % q;
        if r < 0 {
            r += q;
        }
        r as u64
    }

    /// Interprets a residue in `[0, q)` as a signed value in `(-q/2, q/2]`.
    #[inline]
    pub fn to_signed(&self, a: u64) -> i64 {
        debug_assert!(a < self.value);
        if a > self.value / 2 {
            a as i64 - self.value as i64
        } else {
            a as i64
        }
    }
}

impl std::fmt::Display for Modulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Modulus({})", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const Q54: u64 = 0x3FFF_FFFF_FFD8_0001; // a 54-bit NTT-friendly prime (2^54 - 2^19*5... placeholder)

    fn modulus() -> Modulus {
        // Use a known 54-bit prime: 18014398509404161 = 2^54 - 78 * 2^13 + ... Just pick a prime.
        // 18014398509481951 is within 54 bits; use a verified prime below instead.
        Modulus::new(crate::generate_ntt_prime(54, 1 << 12, 0).unwrap()).unwrap()
    }

    #[test]
    fn new_rejects_bad_moduli() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(1 << 63).is_err());
        assert!(Modulus::new(Q54).is_ok());
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = modulus();
        let a = 123_456_789_u64;
        let b = q.value() - 5;
        let s = q.add(a, b);
        assert_eq!(q.sub(s, b), a);
        assert_eq!(q.add(a, q.neg(a)), 0);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let q = modulus();
        let a = q.value() - 1;
        let b = q.value() - 2;
        let expected = ((a as u128 * b as u128) % q.value() as u128) as u64;
        assert_eq!(q.mul(a, b), expected);
    }

    #[test]
    fn pow_and_inv_agree() {
        let q = modulus();
        let a = 987_654_321_u64 % q.value();
        let inv = q.inv(a).unwrap();
        assert_eq!(q.mul(a, inv), 1);
        // Fermat: a^(q-2) is also the inverse when q is prime.
        assert_eq!(q.pow(a, q.value() - 2), inv);
    }

    #[test]
    fn inv_of_zero_fails() {
        let q = modulus();
        assert!(q.inv(0).is_err());
    }

    #[test]
    fn shoup_matches_plain_mul() {
        let q = modulus();
        let b = 0x1234_5678_9ABC % q.value();
        let b_shoup = q.shoup_precompute(b);
        for a in [0u64, 1, 2, q.value() - 1, q.value() / 2, 42] {
            assert_eq!(q.mul_shoup(a, b, b_shoup), q.mul(a, b));
        }
    }

    #[test]
    fn signed_mapping_roundtrip() {
        let q = modulus();
        for v in [-5i64, -1, 0, 1, 5, 1 << 40, -(1 << 40)] {
            let r = q.reduce_i64(v);
            assert_eq!(q.to_signed(r), v);
        }
    }

    #[test]
    fn lazy_domain_bounds_and_correction() {
        let q = modulus();
        assert_eq!(q.two_q(), 2 * q.value());
        let b = 0x1234_5678_9ABC % q.value();
        let b_shoup = q.shoup_precompute(b);
        // Lazy operands anywhere in [0, 4q) must stay below 2q and agree with eager mod q.
        for a in [
            0u64,
            1,
            q.value() - 1,
            q.value(),
            2 * q.value() - 1,
            4 * q.value() - 1,
        ] {
            let lazy = q.mul_shoup_lazy(a, b, b_shoup);
            assert!(lazy < q.two_q(), "lazy result {lazy} out of [0, 2q)");
            assert_eq!(q.reduce_2q(lazy), q.mul(q.reduce(a), b));
        }
        for a in [0u64, q.value() - 1, q.value(), 2 * q.value() - 1] {
            for c in [0u64, q.value(), 2 * q.value() - 1] {
                let s = q.add_lazy(a, c);
                assert!(s < q.two_q());
                assert_eq!(q.reduce_2q(s), q.add(q.reduce(a), q.reduce(c)));
            }
        }
        for a in [0u64, q.value(), 2 * q.value(), 4 * q.value() - 1] {
            assert_eq!(q.reduce_4q(a), q.reduce(a));
        }
    }

    #[test]
    fn mac_capacity_bounds_accumulated_products() {
        let q = modulus();
        let cap = q.u128_mac_capacity();
        assert!(cap >= 4, "capacity {cap} below the guaranteed minimum");
        // cap products of the maximal operands must fit, cap + 1 may not.
        let term = (4 * q.value() as u128 - 1) * (q.value() as u128 - 1);
        assert!(term.checked_mul(cap as u128).is_some());
        // A 62-bit modulus (the cap) still leaves capacity >= 4.
        let wide = Modulus::new((1u64 << 62) - 57).unwrap();
        assert!(wide.u128_mac_capacity() >= 4);
    }

    proptest! {
        #[test]
        fn prop_reduce_u128_matches_modulo(a in any::<u128>()) {
            let q = modulus();
            prop_assert_eq!(q.reduce_u128(a) as u128, a % q.value() as u128);
        }

        #[test]
        fn prop_reduce_u128_lazy_congruent_and_bounded(a in any::<u128>()) {
            let q = modulus();
            let lazy = q.reduce_u128_lazy(a);
            prop_assert!(lazy < q.two_q());
            prop_assert_eq!(q.reduce_2q(lazy) as u128, a % q.value() as u128);
        }

        #[test]
        fn prop_reduce_u64_matches_modulo(a in any::<u64>()) {
            let q = modulus();
            prop_assert_eq!(q.reduce(a), a % q.value());
        }

        #[test]
        fn prop_mul_shoup_lazy_congruent(a in any::<u64>(), b in any::<u64>()) {
            let q = modulus();
            let b = b % q.value();
            let b_shoup = q.shoup_precompute(b);
            let lazy = q.mul_shoup_lazy(a, b, b_shoup);
            prop_assert!(lazy < q.two_q());
            prop_assert_eq!(q.reduce_2q(lazy), q.mul(q.reduce(a), b));
        }

        #[test]
        fn prop_mul_matches_modulo(a in any::<u64>(), b in any::<u64>()) {
            let q = modulus();
            let a = a % q.value();
            let b = b % q.value();
            prop_assert_eq!(q.mul(a, b) as u128, (a as u128 * b as u128) % q.value() as u128);
        }

        #[test]
        fn prop_add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
            let q = modulus();
            let a = a % q.value();
            let b = b % q.value();
            prop_assert_eq!(q.sub(q.add(a, b), b), a);
        }

        #[test]
        fn prop_shoup_matches_mul(a in any::<u64>(), b in any::<u64>()) {
            let q = modulus();
            let a = a % q.value();
            let b = b % q.value();
            let b_shoup = q.shoup_precompute(b);
            prop_assert_eq!(q.mul_shoup(a, b, b_shoup), q.mul(a, b));
        }

        #[test]
        fn prop_mul_add_matches(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let q = modulus();
            let (a, b, c) = (a % q.value(), b % q.value(), c % q.value());
            let expected = ((a as u128 * b as u128 + c as u128) % q.value() as u128) as u64;
            prop_assert_eq!(q.mul_add(a, b, c), expected);
        }
    }
}
