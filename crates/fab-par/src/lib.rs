//! # fab-par
//!
//! A dependency-free scoped worker pool for the FAB reproduction's limb-parallel kernels.
//!
//! RNS arithmetic is embarrassingly parallel across limbs: every limb of an
//! [`RnsPolynomial`](../fab_rns/struct.RnsPolynomial.html) is an independent residue vector,
//! so NTTs, basis conversions and key-switch digit products all decompose into per-limb jobs
//! that touch disjoint memory. This crate provides the minimal machinery to fan those jobs
//! out over OS threads using only `std::thread::scope` — no external scheduler, no global
//! thread pool, no `unsafe`.
//!
//! ## Threading model
//!
//! The worker count is a process-wide setting resolved once from the `FAB_THREADS`
//! environment variable (default **1**, i.e. fully serial). Tests therefore run
//! deterministically single-threaded unless they opt in; benchmarks and applications opt in
//! either via the environment (`FAB_THREADS=8`) or programmatically via [`set_threads`].
//! Because every helper partitions work into *disjoint* index ranges or slices, the computed
//! results are bitwise identical at any thread count — a property the crate's tests pin.
//!
//! Threads are spawned per call (`std::thread::scope`), which keeps the crate dependency-free
//! and borrows-friendly; the kernels this crate serves (degree-2¹⁶ NTTs, multi-limb basis
//! conversions) run for long enough that spawn overhead is noise.
//!
//! ## Panic isolation
//!
//! A panicking job must not strand the pool. Every worker wraps each job in
//! [`std::panic::catch_unwind`]: the first panic payload is stashed, the remaining workers
//! stop pulling new jobs, every thread joins normally, and the payload is re-raised on the
//! *caller* via [`std::panic::resume_unwind`]. The caller observes exactly the panic the job
//! raised — but only after the pool has quiesced, so no worker is left holding a job queue
//! lock (no poisoned shared state) and no thread outlives the call.
//!
//! ```
//! let mut data = vec![0u64; 4 * 8];
//! fab_par::par_chunks_mut(&mut data, 8, |limb_idx, limb| {
//!     for (i, v) in limb.iter_mut().enumerate() {
//!         *v = (limb_idx * 100 + i) as u64;
//!     }
//! });
//! assert_eq!(data[8], 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The first panic payload raised by any worker job, re-raised on the caller after join.
type PanicSlot = Mutex<Option<Box<dyn std::any::Any + Send>>>;

/// Runs one job under `catch_unwind`, stashing the first panic payload and raising the
/// stop flag so sibling workers drain no further jobs.
///
/// `AssertUnwindSafe` is sound here: on a panic the pool stops handing out jobs, joins, and
/// re-raises the payload on the caller, so any state the closure left half-written is never
/// observed by code that believes the call succeeded.
fn run_caught<F: FnOnce()>(job: F, slot: &PanicSlot, stop: &AtomicBool) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
        stop.store(true, Ordering::Relaxed);
        let mut guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if guard.is_none() {
            *guard = Some(payload);
        }
    }
}

/// Re-raises a stashed worker panic on the calling thread (all workers have joined).
fn rethrow(slot: PanicSlot) {
    let payload = slot
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Unresolved sentinel for the global thread-count cell.
const UNSET: usize = 0;

static THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Returns the configured worker count (≥ 1).
///
/// Resolved once from the `FAB_THREADS` environment variable; absent or unparsable values
/// default to `1` (serial), so library users — tests in particular — stay deterministic and
/// single-threaded unless they explicitly opt in.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != UNSET {
        return t;
    }
    let resolved = std::env::var("FAB_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the worker count for the whole process (clamped to ≥ 1).
///
/// Takes precedence over `FAB_THREADS`; used by benchmarks to sweep thread counts at runtime.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Runs `f(i)` for every `i in 0..n`, fanning the indices out over the configured workers.
///
/// Indices are handed out via an atomic counter (dynamic load balancing), so uneven jobs —
/// e.g. NTTs over moduli of different widths — do not serialise the pool. With one worker
/// (the default) this is a plain loop.
pub fn par_limbs<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let panic_slot: PanicSlot = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let run = |next: &AtomicUsize| loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        run_caught(|| f(i), &panic_slot, &stop);
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(|| run(&next));
        }
        run(&next);
    });
    rethrow(panic_slot);
}

/// Runs `f(chunk_index, chunk)` over consecutive `chunk_len`-sized chunks of `data` in
/// parallel. The final chunk may be shorter when `chunk_len` does not divide the length.
///
/// This is the mutable workhorse for limb-major flat polynomial storage: a polynomial's
/// limbs are exactly its `degree`-sized chunks, and `chunks_mut` hands each worker a
/// disjoint `&mut` slice, so no synchronisation (beyond the job queue) is needed.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = threads().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let jobs: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    par_jobs(jobs, |(i, chunk)| f(i, chunk));
}

/// Runs `f` over an explicit list of jobs (e.g. `(target_index, &mut limb)` pairs gathered
/// from non-contiguous output positions), fanning them out over the configured workers.
///
/// Jobs are popped from a shared queue, so ordering across workers is unspecified — the
/// closure must only write through the state it is handed.
pub fn par_jobs<T, F>(jobs: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let workers = threads().min(jobs.len());
    if workers <= 1 {
        for job in jobs {
            f(job);
        }
        return;
    }
    let queue = Mutex::new(jobs);
    let panic_slot: PanicSlot = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let run = |queue: &Mutex<Vec<T>>| loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // `pop` cannot unwind for the job types used here, and jobs themselves run under
        // `catch_unwind`, so the queue lock is never poisoned in practice; recover anyway
        // rather than cascade a panic across workers.
        let job = queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop();
        match job {
            Some(job) => run_caught(|| f(job), &panic_slot, &stop),
            None => break,
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(|| run(&queue));
        }
        run(&queue);
    });
    rethrow(panic_slot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serialises the tests that mutate the global thread count.
    static GUARD: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = GUARD
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let previous = threads();
        set_threads(n);
        let result = f();
        set_threads(previous);
        result
    }

    fn kernel(i: usize, limb: &mut [u64]) {
        for (j, v) in limb.iter_mut().enumerate() {
            // A cheap but index-sensitive mixing function.
            *v = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (j as u64);
        }
    }

    #[test]
    fn par_limbs_visits_every_index_exactly_once() {
        with_threads(4, || {
            let counts: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            par_limbs(counts.len(), |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn multi_thread_matches_single_thread_bitwise() {
        // The determinism contract: identical output at any worker count.
        let degree = 64;
        let limbs = 13;
        let serial = with_threads(1, || {
            let mut data = vec![0u64; degree * limbs];
            par_chunks_mut(&mut data, degree, kernel);
            data
        });
        for workers in [2usize, 3, 8] {
            let parallel = with_threads(workers, || {
                let mut data = vec![0u64; degree * limbs];
                par_chunks_mut(&mut data, degree, kernel);
                data
            });
            assert_eq!(parallel, serial, "mismatch at {workers} workers");
        }
    }

    #[test]
    fn par_jobs_consumes_all_jobs() {
        with_threads(3, || {
            let total = AtomicU64::new(0);
            par_jobs((1u64..=100).collect(), |v| {
                total.fetch_add(v, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 5050);
        });
    }

    #[test]
    fn ragged_final_chunk_is_processed() {
        with_threads(2, || {
            let mut data = vec![0u64; 10];
            par_chunks_mut(&mut data, 4, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i as u64 + 1;
                }
            });
            assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
        });
    }

    #[test]
    fn zero_jobs_are_a_no_op() {
        with_threads(4, || {
            par_limbs(0, |_| panic!("no indices expected"));
            par_jobs(Vec::<u64>::new(), |_| panic!("no jobs expected"));
        });
    }

    /// Extracts the `&str`/`String` message from a caught panic payload.
    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a message")
    }

    #[test]
    fn panicking_job_resurfaces_on_the_caller_after_all_workers_join() {
        for workers in [1usize, 4] {
            with_threads(workers, || {
                let ran = AtomicU64::new(0);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    par_jobs((0u64..64).collect(), |v| {
                        if v == 13 {
                            panic!("injected fault in job 13");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }));
                let payload = result.expect_err("the job panic must reach the caller");
                assert!(panic_message(payload).contains("injected fault in job 13"));
                // At most the non-panicking jobs ran; nothing ran twice.
                assert!(ran.load(Ordering::Relaxed) <= 63, "at {workers} workers");

                // The pool is immediately reusable: no orphaned threads, no poisoned state.
                let total = AtomicU64::new(0);
                par_jobs((1u64..=100).collect(), |v| {
                    total.fetch_add(v, Ordering::Relaxed);
                });
                assert_eq!(total.load(Ordering::Relaxed), 5050);
            });
        }
    }

    #[test]
    fn panicking_index_resurfaces_from_par_limbs() {
        with_threads(4, || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                par_limbs(97, |i| {
                    if i == 42 {
                        panic!("limb 42 exploded");
                    }
                });
            }));
            let payload = result.expect_err("the index panic must reach the caller");
            assert!(panic_message(payload).contains("limb 42 exploded"));
            // Subsequent calls behave normally.
            let counts: Vec<AtomicU64> = (0..17).map(|_| AtomicU64::new(0)).collect();
            par_limbs(counts.len(), |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        });
    }
}
