//! # fab-trace
//!
//! The shared homomorphic-operation vocabulary of the FAB reproduction, plus the
//! trace-recording API that connects the *executing* scheme (`fab-ckks`) to the *costing*
//! accelerator model (`fab-core`).
//!
//! The crate is deliberately tiny and dependency-free: every other crate in the workspace
//! speaks this vocabulary.
//!
//! * [`HeOp`] — one homomorphic operation at a given level (the unit the FAB cost model
//!   charges cycles for).
//! * [`OpTrace`] — a named sequence of operations with optional phase markers; built either
//!   *analytically* (predicted from circuit structure) or *recorded* from a real execution.
//! * [`TraceSink`] — the observer interface an instrumented evaluator emits into. The default
//!   [`NoopSink`] ignores everything; [`RecordingSink`] captures the full ordered trace;
//!   [`CountingSink`] keeps only per-kind tallies (cheap enough to leave on in production).
//!
//! ```
//! use fab_trace::{HeOp, RecordingSink, TraceSink};
//!
//! let sink = RecordingSink::new("demo");
//! sink.begin_phase("warmup");
//! sink.record(HeOp::Multiply { level: 5 });
//! sink.record(HeOp::Rescale { level: 5 });
//! let trace = sink.snapshot();
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.counts().multiply, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Well-known phase labels, shared between analytic traces (`fab-core`) and recorded traces
/// (`fab-ckks`/`fab-lr`) so per-phase comparisons line up by construction.
pub mod phase {
    /// ModRaise: re-populating every limb of an exhausted ciphertext.
    pub const MOD_RAISE: &str = "mod_raise";
    /// SubSum: the rotate-and-add projection onto the sparse-packing subring that precedes
    /// CoeffToSlot when bootstrapping sparsely-packed ciphertexts.
    pub const SUB_SUM: &str = "sub_sum";
    /// CoeffToSlot: the homomorphic inverse encoding FFT.
    pub const COEFF_TO_SLOT: &str = "coeff_to_slot";
    /// EvalMod: the scaled-sine polynomial evaluation.
    pub const EVAL_MOD: &str = "eval_mod";
    /// SlotToCoeff: the homomorphic forward encoding FFT.
    pub const SLOT_TO_COEFF: &str = "slot_to_coeff";
    /// HELR: one sample's forward pass (`z = <w, x>` product).
    pub const LR_FORWARD: &str = "lr_forward";
    /// HELR: the rotate-and-add aggregation of the inner product.
    pub const LR_AGGREGATE: &str = "lr_aggregate";
    /// HELR: the polynomial sigmoid.
    pub const LR_SIGMOID: &str = "lr_sigmoid";
    /// HELR: one sample's gradient contribution.
    pub const LR_GRADIENT: &str = "lr_gradient";
    /// HELR: the end-of-iteration weight update.
    pub const LR_UPDATE: &str = "lr_update";
    /// HELR: masking the weight ciphertext ahead of its end-of-iteration sparse bootstrap
    /// (the bootstrap itself is phase-marked `MOD_RAISE` … `SLOT_TO_COEFF`).
    pub const LR_REFRESH: &str = "lr_refresh";
    /// Serving: time a request spends queued before the server picks it up.
    pub const SERVE_QUEUE: &str = "serve_queue";
    /// Serving: warming the evaluation-key cache from the request's planned key-switch DAG.
    pub const SERVE_PREFETCH: &str = "serve_prefetch";
    /// Serving: executing the request's homomorphic program.
    pub const SERVE_EXECUTE: &str = "serve_execute";
    /// Serving: a request failed; ops recorded after this mark belong to no successful
    /// request, so traces still balance when a batch contains failures.
    pub const SERVE_FAILED: &str = "serve_failed";
}

/// One homomorphic operation at a given level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeOp {
    /// Ciphertext addition (also used for subtraction and plaintext addition, which cost the
    /// same on the FAB datapath).
    Add {
        /// Ciphertext level.
        level: usize,
    },
    /// Plaintext multiplication.
    MultiplyPlain {
        /// Ciphertext level.
        level: usize,
    },
    /// Ciphertext multiplication (tensor + relinearisation).
    Multiply {
        /// Ciphertext level.
        level: usize,
    },
    /// Rescale.
    Rescale {
        /// Ciphertext level before the rescale.
        level: usize,
    },
    /// Rotation with its own key-switch decomposition.
    Rotate {
        /// Ciphertext level.
        level: usize,
    },
    /// Rotation sharing a decomposition with a previous rotation (hoisted).
    RotateHoisted {
        /// Ciphertext level.
        level: usize,
    },
    /// Conjugation.
    Conjugate {
        /// Ciphertext level.
        level: usize,
    },
    /// Raw NTTs (used by ModRaise, which transforms every freshly-populated limb).
    Ntt {
        /// Number of single-limb transforms.
        count: usize,
    },
}

impl HeOp {
    /// The ciphertext level the operation runs at (`None` for raw NTT batches, which are
    /// counted per limb rather than per level).
    pub fn level(&self) -> Option<usize> {
        match *self {
            HeOp::Add { level }
            | HeOp::MultiplyPlain { level }
            | HeOp::Multiply { level }
            | HeOp::Rescale { level }
            | HeOp::Rotate { level }
            | HeOp::RotateHoisted { level }
            | HeOp::Conjugate { level } => Some(level),
            HeOp::Ntt { .. } => None,
        }
    }
}

/// Per-kind operation tallies of a trace (levels erased).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Ciphertext/plaintext additions.
    pub add: u64,
    /// Plaintext multiplications.
    pub multiply_plain: u64,
    /// Ciphertext multiplications.
    pub multiply: u64,
    /// Rescales.
    pub rescale: u64,
    /// Full rotations.
    pub rotate: u64,
    /// Hoisted rotations.
    pub rotate_hoisted: u64,
    /// Conjugations.
    pub conjugate: u64,
    /// Single-limb NTT transforms (sum of `HeOp::Ntt` counts).
    pub ntt: u64,
}

impl OpCounts {
    /// Adds one operation to the tally.
    pub fn record(&mut self, op: HeOp) {
        match op {
            HeOp::Add { .. } => self.add += 1,
            HeOp::MultiplyPlain { .. } => self.multiply_plain += 1,
            HeOp::Multiply { .. } => self.multiply += 1,
            HeOp::Rescale { .. } => self.rescale += 1,
            HeOp::Rotate { .. } => self.rotate += 1,
            HeOp::RotateHoisted { .. } => self.rotate_hoisted += 1,
            HeOp::Conjugate { .. } => self.conjugate += 1,
            HeOp::Ntt { count } => self.ntt += count as u64,
        }
    }

    /// Total number of operations (NTT batches counted per limb).
    pub fn total(&self) -> u64 {
        self.add
            + self.multiply_plain
            + self.multiply
            + self.rescale
            + self.rotate
            + self.rotate_hoisted
            + self.conjugate
            + self.ntt
    }
}

/// A named sequence of operations, optionally split into labelled phases.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    /// Human-readable name of the workload.
    pub name: String,
    /// The operations in execution order.
    pub ops: Vec<HeOp>,
    /// Phase markers: `(label, index of the first op in the phase)`. Ops before the first
    /// marker belong to an implicit unnamed phase.
    marks: Vec<(String, usize)>,
}

impl OpTrace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: HeOp) {
        self.ops.push(op);
    }

    /// Appends `count` copies of an operation.
    pub fn push_many(&mut self, op: HeOp, count: usize) {
        for _ in 0..count {
            self.ops.push(op);
        }
    }

    /// Starts a new labelled phase at the current position.
    pub fn mark_phase(&mut self, label: impl Into<String>) {
        self.marks.push((label.into(), self.ops.len()));
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Per-kind tallies over the whole trace.
    pub fn counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for &op in &self.ops {
            counts.record(op);
        }
        counts
    }

    /// The phase labels in order (empty if the trace was built without markers).
    pub fn phase_labels(&self) -> Vec<&str> {
        self.marks.iter().map(|(label, _)| label.as_str()).collect()
    }

    /// The phases as `(label, ops)` slices: one entry per marker, covering the ops from that
    /// marker up to the next. Ops before the first marker are reported under `""` when any
    /// exist.
    pub fn phase_slices(&self) -> Vec<(&str, &[HeOp])> {
        let mut out = Vec::new();
        let first_marked = self.marks.first().map_or(self.ops.len(), |(_, i)| *i);
        if first_marked > 0 {
            out.push(("", &self.ops[..first_marked]));
        }
        for (k, (label, start)) in self.marks.iter().enumerate() {
            let end = self.marks.get(k + 1).map_or(self.ops.len(), |(_, i)| *i);
            out.push((label.as_str(), &self.ops[*start..end]));
        }
        out
    }

    /// Per-phase tallies over [`Self::phase_slices`].
    pub fn phase_counts(&self) -> Vec<(String, OpCounts)> {
        self.phase_slices()
            .into_iter()
            .map(|(label, ops)| {
                let mut counts = OpCounts::default();
                for &op in ops {
                    counts.record(op);
                }
                (label.to_string(), counts)
            })
            .collect()
    }

    /// The ops of the phase with the given label (first match).
    pub fn phase_ops(&self, label: &str) -> Option<&[HeOp]> {
        let (k, (_, start)) = self
            .marks
            .iter()
            .enumerate()
            .find(|(_, (l, _))| l == label)?;
        let end = self.marks.get(k + 1).map_or(self.ops.len(), |(_, i)| *i);
        Some(&self.ops[*start..end])
    }

    /// Concatenates two traces (the other trace's phase markers are preserved, shifted).
    pub fn extend(&mut self, other: &OpTrace) {
        let offset = self.ops.len();
        for (label, start) in &other.marks {
            self.marks.push((label.clone(), start + offset));
        }
        self.ops.extend_from_slice(&other.ops);
    }
}

/// Observer interface for instrumented homomorphic execution.
///
/// Implementations must be cheap and thread-safe: the evaluator calls [`TraceSink::record`]
/// once per semantic operation from whatever thread executes it.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Called once per executed homomorphic operation.
    fn record(&self, op: HeOp);

    /// Called when execution enters a named phase (bootstrap stages, training steps, …).
    fn begin_phase(&self, _label: &str) {}

    /// Whether the sink actually consumes events. Emitters may skip building events when this
    /// returns `false`; the default [`NoopSink`] returns `false` so instrumentation in the hot
    /// path reduces to one predictable branch.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default sink: ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _op: HeOp) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Records the full ordered operation trace (with phase markers) behind a mutex.
#[derive(Debug, Default)]
pub struct RecordingSink {
    trace: Mutex<OpTrace>,
}

impl RecordingSink {
    /// Creates an empty recording sink; `name` becomes the recorded trace's name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            trace: Mutex::new(OpTrace::new(name)),
        }
    }

    /// Creates an empty recording sink already wrapped in an [`Arc`] for sharing with an
    /// evaluator.
    pub fn shared(name: impl Into<String>) -> Arc<Self> {
        Arc::new(Self::new(name))
    }

    /// A copy of the trace recorded so far.
    pub fn snapshot(&self) -> OpTrace {
        self.trace.lock().expect("trace mutex poisoned").clone()
    }

    /// Takes the recorded trace out, leaving an empty one with the same name.
    pub fn take(&self) -> OpTrace {
        let mut guard = self.trace.lock().expect("trace mutex poisoned");
        let name = guard.name.clone();
        std::mem::replace(&mut guard, OpTrace::new(name))
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, op: HeOp) {
        self.trace.lock().expect("trace mutex poisoned").push(op);
    }

    fn begin_phase(&self, label: &str) {
        self.trace
            .lock()
            .expect("trace mutex poisoned")
            .mark_phase(label);
    }
}

/// Keeps lock-free per-kind tallies only; suitable for always-on metering.
#[derive(Debug, Default)]
pub struct CountingSink {
    add: AtomicU64,
    multiply_plain: AtomicU64,
    multiply: AtomicU64,
    rescale: AtomicU64,
    rotate: AtomicU64,
    rotate_hoisted: AtomicU64,
    conjugate: AtomicU64,
    ntt: AtomicU64,
}

impl CountingSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zeroed counting sink already wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The tallies accumulated so far.
    pub fn counts(&self) -> OpCounts {
        OpCounts {
            add: self.add.load(Ordering::Relaxed),
            multiply_plain: self.multiply_plain.load(Ordering::Relaxed),
            multiply: self.multiply.load(Ordering::Relaxed),
            rescale: self.rescale.load(Ordering::Relaxed),
            rotate: self.rotate.load(Ordering::Relaxed),
            rotate_hoisted: self.rotate_hoisted.load(Ordering::Relaxed),
            conjugate: self.conjugate.load(Ordering::Relaxed),
            ntt: self.ntt.load(Ordering::Relaxed),
        }
    }
}

impl TraceSink for CountingSink {
    fn record(&self, op: HeOp) {
        match op {
            HeOp::Add { .. } => self.add.fetch_add(1, Ordering::Relaxed),
            HeOp::MultiplyPlain { .. } => self.multiply_plain.fetch_add(1, Ordering::Relaxed),
            HeOp::Multiply { .. } => self.multiply.fetch_add(1, Ordering::Relaxed),
            HeOp::Rescale { .. } => self.rescale.fetch_add(1, Ordering::Relaxed),
            HeOp::Rotate { .. } => self.rotate.fetch_add(1, Ordering::Relaxed),
            HeOp::RotateHoisted { .. } => self.rotate_hoisted.fetch_add(1, Ordering::Relaxed),
            HeOp::Conjugate { .. } => self.conjugate.fetch_add(1, Ordering::Relaxed),
            HeOp::Ntt { count } => self.ntt.fetch_add(count as u64, Ordering::Relaxed),
        };
    }
}

/// A fresh no-op sink handle, used as the default by uninstrumented evaluators.
pub fn noop_sink() -> Arc<dyn TraceSink> {
    Arc::new(NoopSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_builder_accumulates_ops() {
        let mut trace = OpTrace::new("demo");
        assert!(trace.is_empty());
        trace.push(HeOp::Add { level: 3 });
        trace.push_many(HeOp::Rescale { level: 3 }, 2);
        assert_eq!(trace.len(), 3);
        let mut other = OpTrace::new("other");
        other.push(HeOp::Multiply { level: 2 });
        trace.extend(&other);
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn counts_tally_per_kind_and_ntt_per_limb() {
        let mut trace = OpTrace::new("counts");
        trace.push(HeOp::Add { level: 1 });
        trace.push(HeOp::Add { level: 2 });
        trace.push(HeOp::Ntt { count: 48 });
        trace.push(HeOp::RotateHoisted { level: 1 });
        let c = trace.counts();
        assert_eq!(c.add, 2);
        assert_eq!(c.ntt, 48);
        assert_eq!(c.rotate_hoisted, 1);
        assert_eq!(c.total(), 51);
    }

    #[test]
    fn phase_counts_split_on_markers() {
        let mut trace = OpTrace::new("phases");
        trace.push(HeOp::Add { level: 1 }); // implicit phase
        trace.mark_phase("a");
        trace.push(HeOp::Multiply { level: 5 });
        trace.push(HeOp::Rescale { level: 5 });
        trace.mark_phase("b");
        trace.push(HeOp::Rotate { level: 4 });
        let phases = trace.phase_counts();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].0, "");
        assert_eq!(phases[0].1.add, 1);
        assert_eq!(phases[1].0, "a");
        assert_eq!(phases[1].1.multiply, 1);
        assert_eq!(phases[1].1.rescale, 1);
        assert_eq!(phases[2].0, "b");
        assert_eq!(phases[2].1.rotate, 1);
        assert_eq!(trace.phase_ops("b").unwrap(), &[HeOp::Rotate { level: 4 }]);
        assert!(trace.phase_ops("missing").is_none());
    }

    #[test]
    fn extend_preserves_and_shifts_phase_markers() {
        let mut a = OpTrace::new("a");
        a.mark_phase("head");
        a.push(HeOp::Add { level: 1 });
        let mut b = OpTrace::new("b");
        b.mark_phase("tail");
        b.push(HeOp::Multiply { level: 2 });
        a.extend(&b);
        assert_eq!(a.phase_labels(), vec!["head", "tail"]);
        assert_eq!(a.phase_ops("tail").unwrap(), &[HeOp::Multiply { level: 2 }]);
    }

    #[test]
    fn recording_sink_captures_order_and_phases() {
        let sink = RecordingSink::new("rec");
        sink.begin_phase("p1");
        sink.record(HeOp::Multiply { level: 7 });
        sink.record(HeOp::Rescale { level: 7 });
        let snap = sink.snapshot();
        assert_eq!(
            snap.ops,
            vec![HeOp::Multiply { level: 7 }, HeOp::Rescale { level: 7 }]
        );
        assert_eq!(snap.phase_labels(), vec!["p1"]);
        let taken = sink.take();
        assert_eq!(taken.len(), 2);
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.snapshot().name, "rec");
    }

    #[test]
    fn counting_sink_is_cheap_and_accurate() {
        let sink = CountingSink::new();
        for _ in 0..5 {
            sink.record(HeOp::Rotate { level: 3 });
        }
        sink.record(HeOp::Ntt { count: 7 });
        let c = sink.counts();
        assert_eq!(c.rotate, 5);
        assert_eq!(c.ntt, 7);
    }

    #[test]
    fn noop_sink_reports_disabled() {
        let sink = NoopSink;
        assert!(!sink.is_enabled());
        sink.record(HeOp::Add { level: 0 });
        let dynamic: std::sync::Arc<dyn TraceSink> = noop_sink();
        assert!(!dynamic.is_enabled());
    }

    #[test]
    fn he_op_levels() {
        assert_eq!(HeOp::Add { level: 4 }.level(), Some(4));
        assert_eq!(HeOp::Ntt { count: 3 }.level(), None);
    }
}
