//! Cross-crate integration tests: a full encrypted workflow (encode → encrypt → compute →
//! decrypt), a bootstrap-and-continue pipeline, and property-based checks on the homomorphic
//! identities that the FAB datapath relies on.

use fab::ckks::bootstrap::BootstrapParams;
use fab::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;

struct Fixture {
    ctx: Arc<CkksContext>,
    encoder: Encoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    evaluator: Evaluator,
    rlk: RelinearizationKey,
    gks: GaloisKeys,
    rng: ChaCha20Rng,
}

fn fixture() -> Fixture {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(1234);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let gks = keygen.galois_keys(&[1, 2, 4, 8], true, &mut rng).unwrap();
    Fixture {
        encoder: Encoder::new(ctx.clone()),
        encryptor: Encryptor::new(ctx.clone(), pk),
        decryptor: Decryptor::new(ctx.clone(), sk),
        evaluator: Evaluator::new(ctx.clone()),
        ctx,
        rlk,
        gks,
        rng,
    }
}

#[test]
fn polynomial_evaluation_pipeline_end_to_end() {
    // Evaluate p(x, y) = (x·y + x)·rot(x, 1) homomorphically and compare with the clear result.
    let mut f = fixture();
    let scale = f.ctx.params().default_scale();
    let level = f.ctx.params().max_level;
    let n = 64usize;
    let xs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin()).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).cos() * 0.5).collect();
    let ct_x = f
        .encryptor
        .encrypt(
            &f.encoder.encode_real(&xs, scale, level).unwrap(),
            &mut f.rng,
        )
        .unwrap();
    let ct_y = f
        .encryptor
        .encrypt(
            &f.encoder.encode_real(&ys, scale, level).unwrap(),
            &mut f.rng,
        )
        .unwrap();

    let xy = f.evaluator.multiply_rescale(&ct_x, &ct_y, &f.rlk).unwrap();
    let (xy_aligned, x_aligned) = f.evaluator.align_for_addition(&xy, &ct_x).unwrap();
    let sum = f.evaluator.add(&xy_aligned, &x_aligned).unwrap();
    let rot = f.evaluator.rotate(&ct_x, 1, &f.gks).unwrap();
    let (sum_a, rot_a) = f.evaluator.align_for_addition(&sum, &rot).unwrap();
    let level_min = sum_a.level().min(rot_a.level());
    let product = f
        .evaluator
        .multiply_rescale(
            &f.evaluator.mod_drop_to_level(&sum_a, level_min).unwrap(),
            &f.evaluator.mod_drop_to_level(&rot_a, level_min).unwrap(),
            &f.rlk,
        )
        .unwrap();

    let decoded = f
        .encoder
        .decode_real(&f.decryptor.decrypt(&product).unwrap());
    for i in 0..n - 1 {
        let expected = (xs[i] * ys[i] + xs[i]) * xs[i + 1];
        assert!(
            (decoded[i] - expected).abs() < 5e-2,
            "slot {i}: {} vs {expected}",
            decoded[i]
        );
    }
    // The last inspected slot pulls in a padded (zero) slot through the rotation.
    let expected_last = 0.0;
    assert!((decoded[n - 1] - expected_last).abs() < 5e-2);
}

#[test]
fn bootstrap_then_continue_computing() {
    // Exhaust a ciphertext, bootstrap it, then keep multiplying — the core promise of the paper.
    let ctx = CkksContext::new_arc(CkksParams::bootstrap_testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let decryptor = Decryptor::new(ctx.clone(), sk);
    let evaluator = Evaluator::new(ctx.clone());
    let bootstrapper = Bootstrapper::new(
        ctx.clone(),
        BootstrapParams {
            eval_mod_degree: 159,
            k_range: 16.0,
            fft_iter: 3,
            sparse_slots: None,
        },
    )
    .unwrap();
    let gks = keygen
        .galois_keys(&bootstrapper.required_rotations(), true, &mut rng)
        .unwrap();

    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| 0.5 * ((i as f64) * 0.03).cos())
        .collect();
    let exhausted = encryptor
        .encrypt(&encoder.encode_real(&values, scale, 0).unwrap(), &mut rng)
        .unwrap();
    assert_eq!(exhausted.level(), 0);

    let refreshed = bootstrapper.bootstrap(&exhausted, &rlk, &gks).unwrap();
    assert!(refreshed.level() >= 2);

    let squared = evaluator
        .multiply_rescale(&refreshed, &refreshed, &rlk)
        .unwrap();
    let decoded = encoder.decode_real(&decryptor.decrypt(&squared).unwrap());
    for i in 0..32 {
        assert!(
            (decoded[i] - values[i] * values[i]).abs() < 0.1,
            "slot {i}: {} vs {}",
            decoded[i],
            values[i] * values[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn prop_homomorphic_linear_combinations(seed in 0u64..1000) {
        let mut f = fixture();
        let scale = f.ctx.params().default_scale();
        let level = 3usize;
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        use rand::Rng;
        let xs: Vec<f64> = (0..32).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let ys: Vec<f64> = (0..32).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let ct_x = f
            .encryptor
            .encrypt(&f.encoder.encode_real(&xs, scale, level).unwrap(), &mut f.rng)
            .unwrap();
        let ct_y = f
            .encryptor
            .encrypt(&f.encoder.encode_real(&ys, scale, level).unwrap(), &mut f.rng)
            .unwrap();
        // 2x - y + 3, evaluated homomorphically.
        let two_x = f.evaluator.add(&ct_x, &ct_x).unwrap();
        let diff = f.evaluator.sub(&two_x, &ct_y).unwrap();
        let shifted = f
            .evaluator
            .add_scalar(&diff, Complex64::new(3.0, 0.0))
            .unwrap();
        let decoded = f
            .encoder
            .decode_real(&f.decryptor.decrypt(&shifted).unwrap());
        for i in 0..32 {
            let expected = 2.0 * xs[i] - ys[i] + 3.0;
            prop_assert!((decoded[i] - expected).abs() < 1e-2);
        }
    }
}
