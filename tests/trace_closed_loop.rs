//! The closed loop the trace-recording API exists for, demonstrated end to end across all
//! layers: a *real* bootstrap executes through the instrumented scheme API, the recorded
//! operation stream is costed by the FAB accelerator model, and its per-phase op counts are
//! asserted exactly equal to the analytic trace of the same pipeline — no hand-maintained
//! workload left unvalidated by a recorded counterpart.

use fab::ckks::bootstrap::BootstrapParams;
use fab::prelude::*;
use fab::trace::{phase, RecordingSink};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

#[test]
fn recorded_bootstrap_feeds_the_accelerator_model() {
    // --- execute a real bootstrap through the instrumented API -----------------------------
    let ctx = CkksContext::new_arc(CkksParams::bootstrap_testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(77);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);

    let sink = RecordingSink::shared("recorded bootstrap");
    let bootstrapper = Bootstrapper::with_sink(
        ctx.clone(),
        BootstrapParams {
            eval_mod_degree: 159,
            k_range: 16.0,
            fft_iter: 3,
            sparse_slots: None,
        },
        sink.clone(),
    )
    .unwrap();
    let keys = keygen
        .galois_keys(&bootstrapper.required_rotations(), true, &mut rng)
        .unwrap();

    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let decryptor = Decryptor::new(ctx.clone(), sk);
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| 0.3 * ((i as f64) * 0.11).cos())
        .collect();
    let ct = encryptor
        .encrypt(&encoder.encode_real(&values, scale, 0).unwrap(), &mut rng)
        .unwrap();
    let refreshed = bootstrapper.bootstrap(&ct, &rlk, &keys).unwrap();

    // The execution is a *real* bootstrap: the message survives and levels are refreshed.
    assert!(refreshed.level() >= 2);
    let decoded = encoder.decode_real(&decryptor.decrypt(&refreshed).unwrap());
    let max_err = decoded
        .iter()
        .zip(&values)
        .map(|(d, v)| (d - v).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 5e-2, "bootstrap error {max_err}");

    let recorded = sink.take();
    assert!(!recorded.is_empty());

    // --- per-phase counts match the analytic trace exactly ----------------------------------
    let predicted = bootstrapper.predicted_trace().unwrap();
    assert_eq!(
        recorded.phase_labels(),
        vec![
            phase::MOD_RAISE,
            phase::COEFF_TO_SLOT,
            phase::EVAL_MOD,
            phase::SLOT_TO_COEFF
        ]
    );
    assert_eq!(recorded.phase_labels(), predicted.phase_labels());
    for ((recorded_label, recorded_counts), (_, predicted_counts)) in recorded
        .phase_counts()
        .iter()
        .zip(predicted.phase_counts().iter())
    {
        assert_eq!(
            recorded_counts, predicted_counts,
            "recorded and analytic op counts diverge in phase {recorded_label}"
        );
    }

    // --- recorded == planned == fab-core workload on the rotation schedule -----------------
    // The fab-core analytic bootstrap workload prices each linear-transform stage from the
    // same BSGS plans the recorded pipeline executed, so all three views agree op-for-op on
    // rotation counts — the equivalence no longer carves out the linear-transform phases.
    let analytic = fab_core::workload::bootstrap_trace(ctx.params(), 3);
    assert_eq!(recorded.phase_labels(), analytic.phase_labels());
    for ((recorded_label, recorded_counts), (_, analytic_counts)) in recorded
        .phase_counts()
        .iter()
        .zip(analytic.phase_counts().iter())
    {
        assert_eq!(
            (
                recorded_counts.rotate,
                recorded_counts.rotate_hoisted,
                recorded_counts.conjugate
            ),
            (
                analytic_counts.rotate,
                analytic_counts.rotate_hoisted,
                analytic_counts.conjugate
            ),
            "recorded and fab-core rotation counts diverge in phase {recorded_label}"
        );
    }

    // --- the recorded trace feeds the accelerator cost model --------------------------------
    let config = FabConfig::alveo_u280();
    let model = OpCostModel::new(config.clone(), ctx.params().clone());
    let recorded_cost = model.cost_trace(&recorded);
    let predicted_cost = model.cost_trace(&predicted);
    assert_eq!(recorded_cost, predicted_cost);
    assert!(recorded_cost.total_cycles > 0);
    assert!(recorded_cost.ntt_count > 0);
    assert!(recorded_cost.time_ms(&config) > 0.0);

    // Per-phase cost decomposition covers the whole trace.
    let phase_total = model
        .phase_costs(&recorded)
        .into_iter()
        .fold(OpCost::default(), |acc, (_, cost)| acc.then(cost));
    assert_eq!(phase_total, recorded_cost);
}
