//! Workspace-level equivalence of the three views of the FAB rotation schedule at the paper's
//! `N = 2^16` parameter set: the *planned* trace of the real software pipeline
//! (`Bootstrapper::predicted_trace`, which a recorded execution matches op for op — enforced
//! by the fab-ckks crate tests), the *accelerator workload* (`fab_core::bootstrap_trace`),
//! and the per-diagonal baseline the BSGS schedule replaces.

use fab::ckks::bootstrap::BootstrapParams;
use fab::prelude::*;
use fab::trace::phase;
use fab_core::workload::bootstrap_trace;

/// Per-phase `(rotate, rotate_hoisted, conjugate)` counts — the key-switch schedule.
fn rotation_schedule(trace: &OpTrace) -> Vec<(String, (u64, u64, u64))> {
    trace
        .phase_counts()
        .into_iter()
        .map(|(label, c)| (label, (c.rotate, c.rotate_hoisted, c.conjugate)))
        .collect()
}

/// Key-switched rotations of one trace phase.
fn phase_keyswitches(trace: &OpTrace, label: &str) -> u64 {
    let mut counts = OpCounts::default();
    for &op in trace.phase_ops(label).unwrap_or(&[]) {
        counts.record(op);
    }
    counts.rotate + counts.rotate_hoisted
}

/// One rotation per nonzero diagonal — what the pipeline executed before the BSGS refactor.
fn per_diagonal_keyswitches(bootstrapper: &Bootstrapper) -> (u64, u64) {
    let count = |plans: Vec<&fab::ckks::BsgsPlan>| -> u64 {
        plans
            .iter()
            .map(|plan| {
                let diagonals: usize = plan.groups().iter().map(|g| g.babies.len()).sum();
                let has_zero = plan
                    .groups()
                    .iter()
                    .any(|g| g.giant == 0 && g.babies.contains(&0));
                (diagonals - usize::from(has_zero)) as u64
            })
            .sum()
    };
    (
        count(bootstrapper.coeff_to_slot_plans()),
        count(bootstrapper.slot_to_coeff_plans()),
    )
}

#[test]
fn planned_recorded_and_accelerator_rotation_schedules_agree_at_paper_scale() {
    let params = CkksParams::fab_paper();
    let ctx = CkksContext::new_arc(params.clone()).unwrap();
    let bootstrapper =
        Bootstrapper::new(ctx.clone(), BootstrapParams::for_scheme(&params)).unwrap();
    let predicted = bootstrapper.predicted_trace().unwrap();
    let analytic = bootstrap_trace(&params, params.fft_iter);

    // The equivalence no longer carves out the linear-transform phases: the planned software
    // pipeline and the accelerator workload agree on the full per-phase rotation schedule
    // (full rotations, hoisted rotations and conjugations), op for op.
    assert_eq!(predicted.phase_labels(), analytic.phase_labels());
    assert_eq!(rotation_schedule(&predicted), rotation_schedule(&analytic));

    // CoeffToSlot at fftIter = 4: the BSGS schedule beats one-rotation-per-diagonal by ~2.9×
    // (36 vs 105 key switches — each 31-diagonal stage needs only ⌈d/bs⌉ + bs rotations).
    let (cts_baseline, stc_baseline) = per_diagonal_keyswitches(&bootstrapper);
    let cts_bsgs = phase_keyswitches(&predicted, phase::COEFF_TO_SLOT);
    let stc_bsgs = phase_keyswitches(&predicted, phase::SLOT_TO_COEFF);
    assert!(
        cts_baseline as f64 >= 2.5 * cts_bsgs as f64,
        "CoeffToSlot: {cts_bsgs} BSGS vs {cts_baseline} per-diagonal key switches"
    );
    assert!(stc_baseline as f64 >= 2.5 * stc_bsgs as f64);
}

#[test]
fn bsgs_coeff_to_slot_cuts_keyswitches_three_fold_at_paper_scale() {
    // At the N = 2^16 paper parameters with fftIter = 3 (a configuration of the paper's own
    // Figure 2 sweep, radix-32 stages), the planned CoeffToSlot performs over 3× fewer
    // key-switched rotations than the per-diagonal baseline — and the planned trace is what a
    // recorded execution is pinned to op-for-op by the fab-ckks equivalence tests.
    let params = CkksParams::fab_paper();
    let ctx = CkksContext::new_arc(params.clone()).unwrap();
    let mut bp = BootstrapParams::for_scheme(&params);
    bp.fft_iter = 3;
    let bootstrapper = Bootstrapper::new(ctx, bp).unwrap();
    let predicted = bootstrapper.predicted_trace().unwrap();
    let analytic = bootstrap_trace(&params, 3);
    assert_eq!(rotation_schedule(&predicted), rotation_schedule(&analytic));

    let (cts_baseline, _) = per_diagonal_keyswitches(&bootstrapper);
    let cts_bsgs = phase_keyswitches(&predicted, phase::COEFF_TO_SLOT);
    assert!(
        cts_baseline as f64 >= 3.0 * cts_bsgs as f64,
        "CoeffToSlot: {cts_bsgs} BSGS vs {cts_baseline} per-diagonal key switches"
    );
}
