//! Cross-crate integration tests for the accelerator model: consistency between the CKKS
//! parameter sets and the hardware model, the balanced-design claim, and the experiment
//! generators used by the benchmark harness.

use fab::prelude::*;
use fab_core::baselines::{table7_bootstrapping, table8_lr_training, HELR_TASK};
use fab_core::workload::{bootstrap_cost, BootstrapStructure};
use fab_core::{amortized_mult_time_us, dnum_sweep, fft_iter_sweep, WorkingSetReport};
use fab_lr::lr_training_time_s;

#[test]
fn paper_parameter_set_is_consistent_across_crates() {
    let params = CkksParams::fab_paper();
    let config = FabConfig::alveo_u280();
    // The raised ciphertext fits on chip, the KeySwitch working set does not (Section 4.6).
    let report = WorkingSetReport::new(&config, &params);
    assert!(report.ciphertext_mib < config.on_chip.capacity_mib());
    assert!(!report.fits_entirely);
    // The bootstrapping depth leaves usable levels.
    assert!(params.levels_after_bootstrap() >= 6);
    assert_eq!(
        BootstrapStructure::for_params(&params, params.fft_iter).total_depth,
        params.bootstrap_depth()
    );
}

#[test]
fn fab_is_compute_bound_not_memory_bound() {
    // The central architectural claim: with the modified datapath and smart scheduling, FAB is
    // no longer limited by main-memory bandwidth.
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let model = OpCostModel::new(config.clone(), params.clone());
    for level in [7usize, 15, 23] {
        assert!(!model.multiply(level).is_memory_bound(), "level {level}");
        assert!(!model.rotate(level).is_memory_bound(), "level {level}");
    }
    // The original (unmodified) datapath moves strictly more HBM data.
    let mut original = config.clone();
    original.keyswitch_datapath = KeySwitchDatapath::Original;
    let original_model = OpCostModel::new(original, params.clone());
    assert!(
        original_model.key_switch(params.max_level).hbm_bytes
            > model.key_switch(params.max_level).hbm_bytes
    );
}

#[test]
fn table7_shape_fab_between_gpu_and_asic() {
    let config = FabConfig::alveo_u280();
    let params = CkksParams::fab_paper();
    let boot = bootstrap_cost(&config, &params, params.fft_iter);
    let amortized = amortized_mult_time_us(
        &config,
        &params,
        &boot,
        params.levels_after_bootstrap(),
        params.slot_count(),
    );
    let rows = table7_bootstrapping();
    let lattigo = rows.iter().find(|r| r.name.contains("Lattigo")).unwrap();
    let bts = rows.iter().find(|r| r.name.contains("BTS")).unwrap();
    let f1 = rows.iter().find(|r| r.name.contains("F1")).unwrap();
    // FAB beats the CPU and the non-bootstrappable ASIC by orders of magnitude, but remains
    // slower than the bootstrapping ASIC — the shape of Table 7.
    assert!(lattigo.amortized_mult_us / amortized > 50.0);
    assert!(f1.amortized_mult_us / amortized > 100.0);
    assert!(bts.amortized_mult_us < amortized);
}

#[test]
fn table8_shape_fab2_beats_cpu_gpu_but_not_asic() {
    let config = FabConfig::alveo_u280();
    let breakdown = lr_training_time_s(&config, &CkksParams::fab_paper(), &HELR_TASK, 8, 0.012);
    let rows = table8_lr_training();
    let lattigo = rows.iter().find(|r| r.name.contains("Lattigo")).unwrap();
    let gpu = rows.iter().find(|r| r.name.contains("GPU")).unwrap();
    let bts = rows.iter().find(|r| r.name.contains("BTS")).unwrap();
    assert!(breakdown.fab2_s < breakdown.fab1_s);
    assert!(lattigo.seconds_per_iteration / breakdown.fab2_s > 100.0);
    assert!(gpu.seconds_per_iteration / breakdown.fab2_s > 2.0);
    assert!(bts.seconds_per_iteration < breakdown.fab2_s);
}

#[test]
fn design_space_choices_match_the_paper() {
    let params = CkksParams::fab_paper();
    let config = FabConfig::alveo_u280();
    // Figure 1: dnum = 3 gives 24 + 8 limbs and 6 levels after bootstrapping.
    let dnum_points = dnum_sweep(&params, 32, params.bootstrap_depth(), &[1, 2, 3, 4, 5, 6]);
    let chosen = dnum_points.iter().find(|p| p.dnum == 3).unwrap();
    assert_eq!(chosen.q_limbs, 24);
    assert_eq!(chosen.alpha, 8);
    // Figure 2: fftIter = 4 is within 25% of the best amortized time in the sweep.
    let fft_points = fft_iter_sweep(&config, &params, &[1, 2, 3, 4, 5, 6]);
    let best = fft_points
        .iter()
        .map(|p| p.amortized_mult_us)
        .fold(f64::INFINITY, f64::min);
    let at_4 = fft_points.iter().find(|p| p.fft_iter == 4).unwrap();
    assert!(at_4.amortized_mult_us <= best * 1.25);
}

#[test]
fn resource_estimate_fits_the_u280() {
    let estimate = ResourceEstimator::new().estimate(&FabConfig::alveo_u280());
    assert!(estimate.fits());
    assert!(
        estimate.uram_percent() > 95.0,
        "URAM is the binding resource"
    );
    assert!(estimate.bram_percent() > 90.0);
    assert!(estimate.dsp_percent() < 100.0);
}

#[test]
fn scaling_up_functional_units_approaches_asic_performance() {
    // Section 5.4: with BTS-class resources (8192 multipliers, 512 MB SRAM) the same
    // microarchitecture would overtake BTS. We check the weaker, directional claim: the
    // BTS-class configuration is several times faster than the U280 configuration.
    let params = CkksParams::fab_paper();
    let u280 = OpCostModel::new(FabConfig::alveo_u280(), params.clone());
    let scaled = OpCostModel::new(FabConfig::bts_class_scaling(), params.clone());
    let level = params.max_level;
    let speedup =
        u280.multiply(level).total_cycles as f64 / scaled.multiply(level).total_cycles as f64;
    assert!(speedup > 4.0, "BTS-class scaling speedup {speedup}");
}
