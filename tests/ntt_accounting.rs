//! NTT-count regression: the transforms the substrate *actually performs* for the hot
//! evaluator operations must equal the closed-form minimum formulas of
//! `fab_ckks::accounting` — verified operation counts instead of trusted timings (the
//! hardware-counter discipline). A future change that silently adds transforms to
//! `multiply`, the hoisted rotation batch, or a bootstrap CoeffToSlot stage fails here.

use fab::ckks::accounting::{self, NttMeter};
use fab::ckks::linear_transform::coeff_to_slot_stages;
use fab::prelude::*;
use fab::rns::metering;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn shape(ctx: &CkksContext, level: usize) -> (usize, usize, usize) {
    (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    )
}

#[test]
fn multiply_and_key_switch_match_the_closed_form_minimum() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(4040);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..16).map(|i| (i as f64 * 0.2).cos()).collect();
    let level = 3;
    let ct_a = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let ct_b = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);

    // Raw key switch.
    let basis = ctx.basis_at_level(level).unwrap();
    let d = fab::ckks::sampling::sample_uniform(&mut rng, &basis);
    let before = metering::counts();
    evaluator.key_switch(&d, &rlk.key, level).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::key_switch(limbs, special, alpha),
        "key_switch transform count drifted from the closed-form minimum"
    );

    // Ciphertext multiplication (tensor + relinearisation).
    let before = metering::counts();
    evaluator.multiply(&ct_a, &ct_b, &rlk).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::multiply(limbs, special, alpha),
        "multiply transform count drifted"
    );

    // The fused multiply_rescale performs exactly the same transforms (the fusion saves
    // conversion work, never transforms) — and the NttMeter surfaces the count as an
    // HeOp::Ntt in a recorded trace.
    let sink = fab::trace::RecordingSink::new("fused");
    let meter = NttMeter::start();
    evaluator.multiply_rescale(&ct_a, &ct_b, &rlk).unwrap();
    let observed = meter.finish_into(&sink);
    assert_eq!(observed, accounting::multiply(limbs, special, alpha));
    assert_eq!(
        sink.snapshot().counts().ntt,
        accounting::multiply(limbs, special, alpha).total()
    );
}

#[test]
fn hoisted_rotation_batch_shares_one_forward_sweep() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(1212);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let keys = keygen.galois_keys(&[1, 2, 5], false, &mut rng).unwrap();
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
    let level = 3;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);

    // Three key-switched rotations + one free step: one shared β·R forward sweep, 2R
    // inverses per rotation — the per-rotation forward re-transforms are gone.
    let before = metering::counts();
    evaluator
        .rotate_hoisted_batch(&ct, &[1, 0, 2, 5], &keys)
        .unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::hoisted_rotation_batch(limbs, special, alpha, 3),
        "hoisted batch transform count drifted"
    );

    // A batch of free steps performs no transforms.
    let before = metering::counts();
    evaluator.rotate_hoisted_batch(&ct, &[0], &keys).unwrap();
    assert_eq!(metering::counts().since(&before).total(), 0);

    // A single key-switched rotation costs exactly one key switch.
    let before = metering::counts();
    evaluator.rotate(&ct, 1, &keys).unwrap();
    assert_eq!(
        metering::counts().since(&before),
        accounting::rotation(limbs, special, alpha)
    );
}

#[test]
fn bootstrap_coeff_to_slot_stage_matches_its_bsgs_formula() {
    // One CoeffToSlot stage of the bootstrap pipeline (grouped inverse-FFT factor with its
    // rotation-minimising BSGS plan), applied homomorphically: the observed transforms must
    // equal the per-stage closed form — hoisted babies + d·multiply_plain + giants.
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(77);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let stage = coeff_to_slot_stages(ctx.fft(), ctx.params().fft_iter)
        .into_iter()
        .next()
        .expect("at least one CoeffToSlot stage")
        .with_bsgs_plan();
    let plan = stage.bsgs_plan().expect("plan attached").clone();
    let keys = keygen
        .galois_keys(&stage.required_rotations(), false, &mut rng)
        .unwrap();

    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.05).sin())
        .collect();
    let level = 3;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);

    let before = metering::counts();
    stage.apply_homomorphic(&evaluator, &ct, &keys).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::bsgs_stage(limbs, special, alpha, &plan, stage.diagonal_count()),
        "CoeffToSlot stage transform count drifted (babies={}, giants={}, diagonals={})",
        plan.baby_rotation_count(),
        plan.giant_rotation_count(),
        stage.diagonal_count()
    );
}
