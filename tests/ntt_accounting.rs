//! NTT-count regression: the transforms the substrate *actually performs* for the hot
//! evaluator operations must equal the closed-form minimum formulas of
//! `fab_ckks::accounting` — verified operation counts instead of trusted timings (the
//! hardware-counter discipline). A future change that silently adds transforms to
//! `multiply`, the hoisted rotation batch, or a bootstrap CoeffToSlot stage fails here.
//!
//! The PR 5 rows pin the domain-aware pipeline:
//!
//! * the dual-form key switch (evaluation operand) performs exactly `ℓ+1` fewer forwards
//!   than the coefficient entry;
//! * `multiply` beats the retained PR 4 formula by exactly `ℓ+1` forwards **and** `2·(ℓ+1)`
//!   inverses (the issue's `ℓ+1`-inverse target, overdelivered: the evaluation-domain `P·d`
//!   absorption removes both `d0` and `d1` inverses);
//! * `multiply_plain` is pinned in both domains (the coefficient path had no assertion
//!   before);
//! * the eval-resident BSGS stage matches its warm/steady formulas, and after warm-up
//!   performs **zero plaintext forward transforms**.

use fab::ckks::accounting::{self, NttMeter};
use fab::ckks::backend::ExecBackend;
use fab::ckks::linear_transform::coeff_to_slot_stages;
use fab::prelude::*;
use fab::rns::metering;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn shape(ctx: &CkksContext, level: usize) -> (usize, usize, usize) {
    (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    )
}

#[test]
fn multiply_and_key_switch_match_the_closed_form_minimum() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(4040);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..16).map(|i| (i as f64 * 0.2).cos()).collect();
    let level = 3;
    let ct_a = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let ct_b = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);

    // Raw key switch, coefficient entry.
    let basis = ctx.basis_at_level(level).unwrap();
    let d = fab::ckks::sampling::sample_uniform(&mut rng, &basis);
    let before = metering::counts();
    let from_coeff = evaluator.key_switch(&d, &rlk.key, level).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::key_switch(limbs, special, alpha),
        "key_switch transform count drifted from the closed-form minimum"
    );

    // Dual-form entry: the same operand in evaluation form skips the lift forwards of its
    // own rows (exactly `limbs` fewer forwards) and pays `limbs` conversion inverses —
    // bitwise-identical output.
    let mut d_eval = d.clone();
    d_eval.to_evaluation(&basis);
    let before = metering::counts();
    let from_eval = evaluator.key_switch(&d_eval, &rlk.key, level).unwrap();
    let observed_dual = metering::counts().since(&before);
    assert_eq!(
        observed_dual,
        accounting::key_switch_dual(limbs, special, alpha),
        "dual-form key_switch transform count drifted"
    );
    assert_eq!(
        observed.forward - observed_dual.forward,
        limbs as u64,
        "dual-form seam must save exactly ℓ+1 forwards"
    );
    assert_eq!(
        from_eval, from_coeff,
        "dual-form key switch diverged bitwise"
    );

    // Ciphertext multiplication (tensor + relinearisation) through the dual-form pipeline.
    let before = metering::counts();
    let product = evaluator.multiply(&ct_a, &ct_b, &rlk).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::multiply(limbs, special, alpha),
        "multiply transform count drifted"
    );

    // The retained PR 4 reference path matches the PR 4 formula and the new pipeline beats
    // it by exactly ℓ+1 forwards and 2·(ℓ+1) inverses — the ROADMAP dual-form lever (the
    // eval-domain P·d absorption removes both d0's and d1's inverses, overdelivering on the
    // ℓ+1-inverse target) — while staying bitwise identical.
    let before = metering::counts();
    let reference = evaluator.multiply_reference(&ct_a, &ct_b, &rlk).unwrap();
    let observed_pr4 = metering::counts().since(&before);
    assert_eq!(
        observed_pr4,
        accounting::multiply_pr4(limbs, special, alpha),
        "PR 4 reference multiply transform count drifted"
    );
    assert_eq!(observed_pr4.forward - observed.forward, limbs as u64);
    assert_eq!(observed_pr4.inverse - observed.inverse, 2 * limbs as u64);
    assert_eq!(product.c0(), reference.c0(), "multiply c0 diverged bitwise");
    assert_eq!(product.c1(), reference.c1(), "multiply c1 diverged bitwise");

    // The fused multiply_rescale performs exactly the same transforms (the fusion saves
    // conversion work, never transforms) — and the NttMeter surfaces the count as an
    // HeOp::Ntt in a recorded trace.
    let sink = fab::trace::RecordingSink::new("fused");
    let meter = NttMeter::start();
    evaluator.multiply_rescale(&ct_a, &ct_b, &rlk).unwrap();
    let observed = meter.finish_into(&sink);
    assert_eq!(observed, accounting::multiply(limbs, special, alpha));
    assert_eq!(
        sink.snapshot().counts().ntt,
        accounting::multiply(limbs, special, alpha).total()
    );
}

#[test]
fn multiply_plain_matches_its_formula_in_both_domains() {
    // Coefficient path: pt + both parts forward, both parts back. Evaluation path: the
    // domain tag skips the ciphertext round-trip entirely — only the plaintext transforms —
    // and converting the eval product back equals the coefficient product bitwise.
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(505);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin()).collect();
    let level = 3;
    let limbs = level + 1;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let pt = encoder.encode_real(&values, scale, level).unwrap();

    let before = metering::counts();
    let coeff_product = evaluator.multiply_plain(&ct, &pt).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::multiply_plain(limbs),
        "coefficient multiply_plain transform count drifted"
    );

    let ct_eval = evaluator.to_evaluation_form(&ct).unwrap();
    let before = metering::counts();
    let eval_product = evaluator.multiply_plain(&ct_eval, &pt).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::multiply_plain_eval(limbs),
        "eval-resident multiply_plain transform count drifted"
    );
    let back = evaluator.to_coefficient_form(&eval_product).unwrap();
    assert_eq!(back.c0(), coeff_product.c0());
    assert_eq!(back.c1(), coeff_product.c1());
}

#[test]
fn hoisted_rotation_batch_shares_one_forward_sweep() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(1212);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let keys = keygen.galois_keys(&[1, 2, 5], false, &mut rng).unwrap();
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
    let level = 3;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);

    // Three key-switched rotations + one free step: one shared β·R forward sweep, 2R
    // inverses per rotation — the per-rotation forward re-transforms are gone.
    let before = metering::counts();
    evaluator
        .rotate_hoisted_batch(&ct, &[1, 0, 2, 5], &keys)
        .unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::hoisted_rotation_batch(limbs, special, alpha, 3),
        "hoisted batch transform count drifted"
    );

    // A batch of free steps performs no transforms.
    let before = metering::counts();
    evaluator.rotate_hoisted_batch(&ct, &[0], &keys).unwrap();
    assert_eq!(metering::counts().since(&before).total(), 0);

    // A single key-switched rotation costs exactly one key switch.
    let before = metering::counts();
    evaluator.rotate(&ct, 1, &keys).unwrap();
    assert_eq!(
        metering::counts().since(&before),
        accounting::rotation(limbs, special, alpha)
    );
}

#[test]
fn bootstrap_coeff_to_slot_stage_matches_its_bsgs_formula() {
    // One CoeffToSlot stage of the bootstrap pipeline (grouped inverse-FFT factor with its
    // rotation-minimising BSGS plan), applied homomorphically through the eval-resident
    // path: the first application pays the one-time NTT-diagonal cache fill (`warm`), every
    // later application performs zero plaintext forward transforms, and the retained PR 4
    // coefficient-resident path still matches its own formula bitwise-identically.
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(77);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let stage = coeff_to_slot_stages(ctx.fft(), ctx.params().fft_iter)
        .into_iter()
        .next()
        .expect("at least one CoeffToSlot stage")
        .with_bsgs_plan();
    let plan = stage.bsgs_plan().expect("plan attached").clone();
    let keys = keygen
        .galois_keys(&stage.required_rotations(), false, &mut rng)
        .unwrap();

    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.05).sin())
        .collect();
    let level = 3;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);
    let diagonals = stage.diagonal_count();

    // Warm-up application: eval-resident counts plus the one-time cache fill.
    let before = metering::counts();
    let warm_out = stage.apply_homomorphic(&evaluator, &ct, &keys).unwrap();
    let warm = metering::counts().since(&before);
    assert_eq!(
        warm,
        accounting::bsgs_stage_eval(limbs, special, alpha, &plan, diagonals, true),
        "warm CoeffToSlot stage transform count drifted (babies={}, giants={}, diagonals={})",
        plan.baby_rotation_count(),
        plan.giant_rotation_count(),
        diagonals
    );

    // Steady-state application: zero plaintext forwards — the warm/steady difference is
    // exactly the diagonal cache fill, and nothing else.
    let before = metering::counts();
    let steady_out = stage.apply_homomorphic(&evaluator, &ct, &keys).unwrap();
    let steady = metering::counts().since(&before);
    assert_eq!(
        steady,
        accounting::bsgs_stage_eval(limbs, special, alpha, &plan, diagonals, false),
        "steady CoeffToSlot stage transform count drifted"
    );
    assert_eq!(
        warm.forward - steady.forward,
        (diagonals * limbs) as u64,
        "warm-up must charge exactly the plaintext cache fill"
    );
    assert_eq!(warm.inverse, steady.inverse);
    assert_eq!(warm_out.c0(), steady_out.c0(), "cache changed the result");

    // The PR 4 coefficient-resident reference still matches its own (larger) formula and
    // the same bits.
    let backend = ExecBackend::new(&evaluator, None, Some(&keys));
    let before = metering::counts();
    let reference = stage.apply_bsgs_reference(&backend, &ct).unwrap();
    let observed = metering::counts().since(&before);
    assert_eq!(
        observed,
        accounting::bsgs_stage(limbs, special, alpha, &plan, diagonals),
        "PR 4 reference BSGS stage transform count drifted"
    );
    assert!(steady.forward < observed.forward);
    assert!(steady.inverse < observed.inverse);
    assert_eq!(reference.c0(), steady_out.c0(), "BSGS paths diverged (c0)");
    assert_eq!(reference.c1(), steady_out.c1(), "BSGS paths diverged (c1)");
}
