//! Bytes-moved regression: the DRAM-order traffic the substrate *actually records* for the
//! hot evaluator operations must equal the closed-form `_bytes` formulas of
//! `fab_ckks::accounting` — the same verified-counters discipline `ntt_accounting.rs`
//! applies to transform counts, extended to the byte meter that feeds the PR 7 software
//! roofline. A future change that silently adds (or loses) memory traffic in `key_switch`,
//! `multiply`, `multiply_rescale`, a hoisted rotation batch, or a bootstrap BSGS stage
//! fails here, not in a benchmark.
//!
//! The meter charges on the calling thread before any `fab_par` fan-out, so every tally —
//! and therefore every assertion below — is invariant under `FAB_THREADS`; the last test
//! pins that explicitly at 1/2/4 workers.

use fab::ckks::accounting;
use fab::ckks::linear_transform::coeff_to_slot_stages;
use fab::prelude::*;
use fab::rns::metering;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn shape(ctx: &CkksContext, level: usize) -> (usize, usize, usize) {
    (
        level + 1,
        ctx.params().special_limbs(),
        ctx.params().alpha(),
    )
}

#[test]
fn key_switch_bytes_match_the_closed_form_in_both_entry_domains() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(4041);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let rlk = keygen.relinearization_key(&mut rng);
    let evaluator = Evaluator::new(ctx.clone());
    let level = 3;
    let (limbs, special, alpha) = shape(&ctx, level);
    let degree = ctx.degree();

    let basis = ctx.basis_at_level(level).unwrap();
    let d = fab::ckks::sampling::sample_uniform(&mut rng, &basis);

    // Coefficient entry: every digit row lifts + transforms.
    let before = metering::byte_counts();
    evaluator.key_switch(&d, &rlk.key, level).unwrap();
    let observed = metering::byte_counts().since(&before);
    assert_eq!(
        observed,
        accounting::key_switch_bytes(degree, limbs, special, alpha),
        "key_switch recorded bytes drifted from the closed-form formula"
    );

    // The fab-core analytical traffic model agrees with the *actually metered* bytes
    // within its stated tolerance — the PR 7 calibration, closed against live measurement
    // rather than only against the closed form.
    let model = fab::accelerator::SoftwareTrafficModel::new(ctx.params());
    let modelled = model.key_switch_bytes(limbs, special, alpha) as f64;
    let metered = observed.total() as f64;
    assert!(
        (modelled - metered).abs() / metered <= fab::accelerator::SoftwareTrafficModel::TOLERANCE,
        "fab-core software traffic model drifted from metered bytes: {modelled} vs {metered}"
    );

    // Dual-form entry: the operand rows are reused verbatim; one batched inverse feeds the
    // coefficient-domain conversions instead of the lift forwards.
    let mut d_eval = d.clone();
    d_eval.to_evaluation(&basis);
    let before = metering::byte_counts();
    evaluator.key_switch(&d_eval, &rlk.key, level).unwrap();
    let observed_dual = metering::byte_counts().since(&before);
    assert_eq!(
        observed_dual,
        accounting::key_switch_dual_bytes(degree, limbs, special, alpha),
        "dual-form key_switch recorded bytes drifted"
    );
}

#[test]
fn multiply_and_fused_rescale_bytes_match_their_formulas() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(4242);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..16).map(|i| (i as f64 * 0.2).cos()).collect();
    let level = 3;
    let ct_a = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let ct_b = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);
    let degree = ctx.degree();

    let before = metering::byte_counts();
    evaluator.multiply(&ct_a, &ct_b, &rlk).unwrap();
    let observed = metering::byte_counts().since(&before);
    assert_eq!(
        observed,
        accounting::multiply_bytes(degree, limbs, special, alpha),
        "multiply recorded bytes drifted"
    );

    // The fused ModDown+rescale performs the same transforms but different conversion
    // traffic (the top prime is treated as a special limb): its own formula, not
    // multiply's.
    let before = metering::byte_counts();
    evaluator.multiply_rescale(&ct_a, &ct_b, &rlk).unwrap();
    let observed = metering::byte_counts().since(&before);
    assert_eq!(
        observed,
        accounting::multiply_rescale_bytes(degree, limbs, special, alpha),
        "multiply_rescale recorded bytes drifted"
    );
}

#[test]
fn rotation_and_hoisted_batch_bytes_match_their_formulas() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(1213);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let keys = keygen.galois_keys(&[1, 2, 5], false, &mut rng).unwrap();
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());
    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
    let level = 3;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);
    let degree = ctx.degree();

    // Three key-switched rotations + one free step share one digit-raise sweep.
    let before = metering::byte_counts();
    evaluator
        .rotate_hoisted_batch(&ct, &[1, 0, 2, 5], &keys)
        .unwrap();
    let observed = metering::byte_counts().since(&before);
    assert_eq!(
        observed,
        accounting::hoisted_rotation_batch_bytes(degree, limbs, special, alpha, 3),
        "hoisted batch recorded bytes drifted"
    );

    // A batch of free steps is a pure copy: zero metered traffic.
    let before = metering::byte_counts();
    evaluator.rotate_hoisted_batch(&ct, &[0], &keys).unwrap();
    assert_eq!(metering::byte_counts().since(&before).total(), 0);

    // A single key-switched rotation: two automorphism gathers + key switch + combine.
    let before = metering::byte_counts();
    evaluator.rotate(&ct, 1, &keys).unwrap();
    assert_eq!(
        metering::byte_counts().since(&before),
        accounting::rotation_bytes(degree, limbs, special, alpha),
        "rotation recorded bytes drifted"
    );
}

#[test]
fn bootstrap_coeff_to_slot_stage_bytes_match_the_bsgs_formula() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(78);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let pk = keygen.public_key(&mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone(), pk);
    let evaluator = Evaluator::new(ctx.clone());

    let stage = coeff_to_slot_stages(ctx.fft(), ctx.params().fft_iter)
        .into_iter()
        .next()
        .expect("at least one CoeffToSlot stage")
        .with_bsgs_plan();
    let plan = stage.bsgs_plan().expect("plan attached").clone();
    let keys = keygen
        .galois_keys(&stage.required_rotations(), false, &mut rng)
        .unwrap();

    let scale = ctx.params().default_scale();
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.05).sin())
        .collect();
    let level = 3;
    let ct = encryptor
        .encrypt(
            &encoder.encode_real(&values, scale, level).unwrap(),
            &mut rng,
        )
        .unwrap();
    let (limbs, special, alpha) = shape(&ctx, level);
    let degree = ctx.degree();
    let diagonals = stage.diagonal_count();

    // Warm-up pays the one-time diagonal cache fill on top of the steady-state traffic.
    let before = metering::byte_counts();
    stage.apply_homomorphic(&evaluator, &ct, &keys).unwrap();
    let warm = metering::byte_counts().since(&before);
    assert_eq!(
        warm,
        accounting::bsgs_stage_eval_bytes(degree, limbs, special, alpha, &plan, diagonals, true),
        "warm CoeffToSlot stage recorded bytes drifted (babies={}, giants={}, diagonals={})",
        plan.baby_rotation_count(),
        plan.giant_rotation_count(),
        diagonals
    );

    let before = metering::byte_counts();
    stage.apply_homomorphic(&evaluator, &ct, &keys).unwrap();
    let steady = metering::byte_counts().since(&before);
    assert_eq!(
        steady,
        accounting::bsgs_stage_eval_bytes(degree, limbs, special, alpha, &plan, diagonals, false),
        "steady CoeffToSlot stage recorded bytes drifted"
    );
    // The warm/steady gap is exactly the plaintext cache fill, on the read and write side.
    let fill =
        accounting::bsgs_stage_eval_bytes(degree, limbs, special, alpha, &plan, diagonals, true)
            .since(&accounting::bsgs_stage_eval_bytes(
                degree, limbs, special, alpha, &plan, diagonals, false,
            ));
    assert_eq!(warm.since(&steady), fill);
}

#[test]
fn recorded_bytes_and_results_are_invariant_under_thread_count() {
    let ctx = CkksContext::new_arc(CkksParams::testing()).unwrap();
    let mut rng = ChaCha20Rng::seed_from_u64(999);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let keygen = KeyGenerator::new(ctx.clone(), sk);
    let rlk = keygen.relinearization_key(&mut rng);
    let evaluator = Evaluator::new(ctx.clone());
    let level = 3;
    let basis = ctx.basis_at_level(level).unwrap();
    let d = fab::ckks::sampling::sample_uniform(&mut rng, &basis);

    let mut outputs = Vec::new();
    let mut tallies = Vec::new();
    let previous = fab_par::threads();
    for workers in [1, 2, 4] {
        fab_par::set_threads(workers);
        let before = metering::byte_counts();
        let out = evaluator.key_switch(&d, &rlk.key, level).unwrap();
        tallies.push(metering::byte_counts().since(&before));
        outputs.push(out);
    }
    fab_par::set_threads(previous);
    assert!(
        tallies.windows(2).all(|w| w[0] == w[1]),
        "metered bytes varied with FAB_THREADS: {tallies:?}"
    );
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "key_switch output varied with FAB_THREADS"
    );
}

#[test]
fn paper_scale_closed_forms_pin_the_readme_table() {
    // FAB's full-depth shape (Table 2): N = 2^16, 24 limbs of Q, 8 special limbs, alpha 8.
    // The README's bytes/op table quotes these numbers (in MiB); a change here means the
    // closed forms moved and the README must move with them.
    let (degree, limbs, special, alpha) = (1usize << 16, 24, 8, 8);
    let mib = |c: metering::ByteCounts| (c.total() as f64 / (1024.0 * 1024.0)).round() as u64;
    assert_eq!(
        mib(accounting::key_switch_bytes(degree, limbs, special, alpha)),
        4788
    );
    assert_eq!(
        mib(accounting::multiply_bytes(degree, limbs, special, alpha)),
        6672
    );
    assert_eq!(
        mib(accounting::multiply_rescale_bytes(
            degree, limbs, special, alpha
        )),
        6715
    );
    assert_eq!(
        mib(accounting::rotation_bytes(degree, limbs, special, alpha)),
        4896
    );
}
