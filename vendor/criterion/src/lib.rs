//! Offline stand-in for the subset of the `criterion` benchmarking API this workspace uses.
//!
//! The container has no registry access, so `fab-bench` links against this minimal harness:
//! it runs each benchmark closure for a short, fixed measurement budget and prints mean
//! iteration times to stdout. There is no statistical analysis, HTML report, or comparison
//! baseline — the numbers are indicative only, but the benchmark *code* stays identical to
//! what real criterion would run, so swapping the real crate back in is a one-line change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (best-effort, stable-Rust version).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup iteration, then the measured samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iterations = self.samples;
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name}: no measurement recorded");
            return;
        }
        let mean = self.total.as_secs_f64() / self.iterations as f64;
        println!(
            "{name}: mean {:.3} ms over {} iterations",
            mean * 1e3,
            self.iterations
        );
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A named group of benchmarks sharing a sample-size configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        bencher.report(&name);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher, input);
        bencher.report(&name);
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: u64,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_samples();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        bencher.report(&format!("{id}"));
        self
    }

    /// Sets the default number of measured iterations.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.default_samples = samples as u64;
        self
    }

    fn effective_samples(&self) -> u64 {
        if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        }
    }
}

/// Declares the benchmark entry-point group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("square", |b| b.iter(|| black_box(7u64) * 7));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
