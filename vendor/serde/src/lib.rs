//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The container has no registry access, so serialization runs against this minimal
//! re-implementation: [`Serialize`] lowers a value into the self-describing [`Value`] tree and
//! [`Deserialize`] rebuilds it, while [`json`] renders/parses that tree as ordinary JSON text.
//! The derive macros are re-exported from the sibling `serde_derive` stub, so downstream code
//! keeps the familiar `#[derive(serde::Serialize, serde::Deserialize)]` surface (gated behind
//! each crate's `serde` feature) without any registry dependency.
//!
//! Fidelity notes: maps preserve field order, `f64` uses Rust's `{:?}` formatting for exact
//! round-trips, and the numeric impls accept any numeric [`Value`] variant that fits, so a
//! `u64` written as `42` reads back into `usize`/`f64` fields the way real `serde_json` allows.

#![forbid(unsafe_code)]

// Lets the derive-generated `::serde::…` paths resolve inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the stub's counterpart of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative (or explicitly signed) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`], if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up `key` in a [`Value::Map`], erroring when absent (used by derived code).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// JSON rendering and parsing for the [`Value`] tree.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes `value` to compact JSON text.
    pub fn to_string<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value());
        out
    }

    /// Parses JSON text and rebuilds a `T` from it.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        T::from_value(&value)
    }

    fn write_value(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` always keeps a `.0`/exponent marker, so floats re-parse as floats.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    write_value(out, item);
                }
                out.push('}');
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if b" \t\r\n".contains(b) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Result<u8, Error> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::custom("unexpected end of input"))
        }

        fn expect(&mut self, byte: u8) -> Result<(), Error> {
            let found = self.peek()?;
            if found != byte {
                return Err(Error::custom(format!(
                    "expected `{}` at byte {}, found `{}`",
                    byte as char, self.pos, found as char
                )));
            }
            self.pos += 1;
            Ok(())
        }

        fn take_literal(&mut self, literal: &str) -> bool {
            if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
                self.pos += literal.len();
                true
            } else {
                false
            }
        }

        fn parse_value(&mut self) -> Result<Value, Error> {
            match self.peek()? {
                b'{' => self.parse_map(),
                b'[' => self.parse_seq(),
                b'"' => self.parse_string().map(Value::Str),
                b't' | b'f' | b'n' => {
                    if self.take_literal("true") {
                        Ok(Value::Bool(true))
                    } else if self.take_literal("false") {
                        Ok(Value::Bool(false))
                    } else if self.take_literal("null") {
                        Ok(Value::Null)
                    } else {
                        Err(Error::custom(format!(
                            "invalid literal at byte {}",
                            self.pos
                        )))
                    }
                }
                _ => self.parse_number(),
            }
        }

        fn parse_map(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                entries.push((key, self.parse_value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected `,` or `}}`, found `{}`",
                            other as char
                        )))
                    }
                }
            }
        }

        fn parse_seq(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(self.parse_value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected `,` or `]`, found `{}`",
                            other as char
                        )))
                    }
                }
            }
        }

        fn parse_string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self
                    .bytes
                    .get(self.pos)
                    .ok_or_else(|| Error::custom("unterminated string"))?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| Error::custom("unterminated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                                self.pos += 4;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::custom("invalid \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                                );
                            }
                            other => {
                                return Err(Error::custom(format!(
                                    "unsupported escape `\\{}`",
                                    other as char
                                )))
                            }
                        }
                    }
                    other => {
                        // Collect the full UTF-8 sequence starting at this byte.
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        if other < 0x80 {
                            out.push(other as char);
                        } else {
                            let chunk = std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                            out.push_str(chunk);
                            self.pos = end;
                        }
                    }
                }
            }
        }

        fn parse_number(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while let Some(b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || b".eE+-".contains(b) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::custom("invalid number"))?;
            if text.is_empty() {
                return Err(Error::custom(format!("expected number at byte {start}")));
            }
            if text.contains(['.', 'e', 'E']) {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))
            } else if text.starts_with('-') {
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))
            } else {
                text.parse::<u64>()
                    .map(Value::UInt)
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        count: usize,
        ratio: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Careful,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        name: String,
        enabled: bool,
        mode: Mode,
        inner: Inner,
        weights: Vec<f64>,
        limit: Option<u64>,
    }

    #[test]
    fn derived_round_trip_preserves_everything() {
        let value = Outer {
            name: "fab \"serve\"\n".to_string(),
            enabled: true,
            mode: Mode::Careful,
            inner: Inner {
                count: 23,
                ratio: 0.1 + 0.2,
            },
            weights: vec![1.0, -2.5, 3e-9],
            limit: None,
        };
        let text = json::to_string(&value);
        let back: Outer = json::from_str(&text).expect("round trip parses");
        assert_eq!(back, value);
    }

    #[test]
    fn numbers_cross_variants_like_serde_json() {
        assert_eq!(json::from_str::<f64>("42").unwrap(), 42.0);
        assert_eq!(json::from_str::<i64>("42").unwrap(), 42);
        assert_eq!(json::from_str::<u32>("-1").ok(), None);
        assert_eq!(json::from_str::<i32>("-7").unwrap(), -7);
    }

    #[test]
    fn unknown_enum_variant_is_rejected() {
        assert!(json::from_str::<Mode>("\"Turbo\"").is_err());
    }
}
