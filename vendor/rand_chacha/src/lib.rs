//! Offline stand-in for `rand_chacha`: deterministic ChaCha-keystream generators implementing
//! the vendored `rand` stub traits.
//!
//! The block function is the standard ChaCha core (the RFC 7539 constants and quarter-round),
//! parameterised by the round count. Stream/nonce handling is simplified to a 64-bit block
//! counter, which is all the workspace needs: reproducible, well-mixed randomness for tests
//! and key generation in a research reproduction. Not audited for cryptographic use.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha keystream generator with `ROUNDS` rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        (hi << 32) | lo
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<8>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        let mut c = ChaCha20Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_is_well_distributed() {
        // Crude sanity check: bit frequency over a few thousand words is near half.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u64;
        let total = 4096u64;
        for _ in 0..total {
            ones += rng.next_u64().count_ones() as u64;
        }
        let fraction = ones as f64 / (total as f64 * 64.0);
        assert!((0.49..0.51).contains(&fraction), "bit fraction {fraction}");
    }
}
