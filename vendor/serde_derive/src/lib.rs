//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The container has no registry access (and therefore no `syn`/`quote`), so the derives are
//! implemented over the raw [`proc_macro::TokenStream`]: a small hand-written walker extracts
//! the item's name plus its named fields (structs) or unit variants (enums), and the
//! implementations of the stub `serde::Serialize` / `serde::Deserialize` traits are emitted as
//! source strings. Only the shapes this workspace derives are supported — plain braced structs
//! with named fields and fieldless enums, no generics — anything else fails the build with an
//! explicit message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The subset of item shapes the stub derives understand.
enum Item {
    /// A braced struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// A fieldless enum (unit variants only).
    Enum { name: String, variants: Vec<String> },
}

/// Skips one attribute (`#` followed by a bracketed group), if present.
fn skip_attributes(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("serde stub derive: malformed attribute: {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility prefix, if present.
fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(ident)) = iter.peek() {
        if ident.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Parses the derive input into the supported [`Item`] shapes.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde stub derive: expected item name, found {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stub derive on `{name}`: only plain braced items without generics are \
             supported, found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("serde stub derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Extracts the field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("serde stub derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after `{field}`, found {other:?}"),
        }
        fields.push(field);
        // Skip the type: everything up to the next top-level comma (tracking angle-bracket
        // depth so generic arguments do not end the field early).
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Extracts the variant names of a fieldless enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("serde stub derive: expected variant name, found {other:?}"),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => panic!(
                "serde stub derive: only unit variants are supported; `{variant}` is followed \
                 by {other:?}"
            ),
        }
    }
    variants
}

/// Derives the stub `serde::Serialize` (a `to_value` into the `serde::Value` tree).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde stub derive: generated code parses")
}

/// Derives the stub `serde::Deserialize` (a `from_value` from the `serde::Value` tree).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant for {name}: {{value:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde stub derive: generated code parses")
}
