//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access to a cargo registry, so the workspace vendors a
//! minimal, API-compatible implementation of the pieces it needs: [`RngCore`], the [`Rng`]
//! extension trait with `gen_range`/`gen_bool`, and [`SeedableRng`] with `seed_from_u64`.
//! Generators are supplied by the sibling `rand_chacha` stub. The distributions are uniform
//! and deterministic; nothing here is intended to be cryptographically secure (the workspace
//! only uses randomness for test vectors and reproducible key material in a research
//! reproduction).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation interface.
pub trait RngCore {
    /// Returns the next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits mapped onto [0, 1), then scaled to the range.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` via SplitMix64 (matching `rand`'s documented
    /// behaviour of expanding the state with a simple PRNG) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..97);
            assert!(v < 97);
            let s: i64 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&s));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
