//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no registry access, so property tests run against this minimal
//! re-implementation: the [`proptest!`] macro expands each property into a plain `#[test]`
//! that draws `cases` deterministic samples from the argument strategies (seeded per test by
//! the test name) and runs the body. There is no shrinking and no persistence — a failing
//! sample is reported by the ordinary assertion failure, and reruns are deterministic.
//!
//! Supported strategies: integer and float [`Range`](std::ops::Range)s, `any::<T>()` for the
//! primitive integers, [`Strategy::prop_map`], and [`collection::vec`] with a fixed length.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Run-configuration for a property (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of samples to draw per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator used to drive the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one sample.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

/// Types with a full-domain default strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing fixed-length vectors (the only form this workspace uses).
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }` becomes a `#[test]`
/// running the body over deterministically drawn samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for _ in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                $body
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_maps_compose(x in 0u64..100, y in (0u64..8).prop_map(|k| 2 * k + 1)) {
            prop_assert!(x < 100);
            prop_assert!(y % 2 == 1 && y < 16);
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(-1.0f64..1.0, 32)) {
            prop_assert_eq!(v.len(), 32);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in crate::any::<u64>()) {
            let _ = seed;
        }
    }
}
