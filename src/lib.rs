//! # fab
//!
//! Top-level facade of the FAB reproduction ("FAB: An FPGA-based Accelerator for
//! Bootstrappable Fully Homomorphic Encryption", HPCA 2023): re-exports the arithmetic
//! substrate, the RNS layer, the CKKS scheme with bootstrapping, the accelerator model and the
//! logistic-regression application under one roof, so examples and downstream users only need
//! a single dependency.
//!
//! ```
//! use fab::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fab::ckks::CkksError> {
//! let ctx = CkksContext::new_arc(CkksParams::testing())?;
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
//! let encoder = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone(), keygen.public_key(&mut rng));
//! let decryptor = Decryptor::new(ctx.clone(), sk);
//! let ct = encryptor.encrypt(&encoder.encode_real(&[1.0, 2.0], ctx.params().default_scale(), 2)?, &mut rng)?;
//! let values = encoder.decode_real(&decryptor.decrypt(&ct)?);
//! assert!((values[0] - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Arithmetic substrate: modular arithmetic, NTT, special FFT, automorphisms.
pub use fab_math as math;
/// Residue-number-system substrate: bases, polynomials, basis conversion, ModUp/ModDown.
pub use fab_rns as rns;
/// The RNS-CKKS scheme with hybrid key switching and bootstrapping.
pub use fab_ckks as ckks;
/// The FAB accelerator model (cost model, memory model, resources, design space, baselines).
pub use fab_core as accelerator;
/// Encrypted logistic regression (the paper's target application).
pub use fab_lr as logistic_regression;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use fab_ckks::{
        Bootstrapper, Ciphertext, CkksContext, CkksParams, Decryptor, Encoder, Encryptor,
        Evaluator, GaloisKeys, KeyGenerator, Plaintext, PublicKey, RelinearizationKey, SecretKey,
    };
    pub use fab_core::{
        FabConfig, KeySwitchDatapath, MultiFpgaSystem, OpCost, OpCostModel, ResourceEstimator,
    };
    pub use fab_lr::{synthetic_mnist_like, EncryptedLogisticRegression, LogisticRegressionTrainer};
    pub use fab_math::Complex64;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let params = crate::ckks::CkksParams::fab_paper();
        assert_eq!(params.degree(), 1 << 16);
        let config = crate::accelerator::FabConfig::alveo_u280();
        assert_eq!(config.functional_units, 256);
        let data = crate::logistic_regression::synthetic_mnist_like(10, 4, 1);
        assert_eq!(data.len(), 10);
        assert!(crate::math::is_prime(65537));
    }
}
