//! # fab
//!
//! Top-level facade of the FAB reproduction ("FAB: An FPGA-based Accelerator for
//! Bootstrappable Fully Homomorphic Encryption", HPCA 2023): re-exports the arithmetic
//! substrate, the RNS layer, the CKKS scheme with bootstrapping, the accelerator model and the
//! logistic-regression application under one roof, so examples and downstream users only need
//! a single dependency.
//!
//! ## The trace-recording loop
//!
//! The workspace is organised around one seam: every homomorphic execution can *record* the
//! operations it performs (as [`trace::OpTrace`]), and the accelerator model *costs* exactly
//! those recorded operations — so the modelled FPGA numbers can never silently drift away
//! from what the scheme really executes.
//!
//! 1. Build an instrumented evaluator ([`ckks::Evaluator::with_sink`]), bootstrapper
//!    ([`ckks::Bootstrapper::with_sink`]) or encrypted trainer
//!    ([`logistic_regression::EncryptedLogisticRegression::with_sink`]) with a
//!    [`trace::RecordingSink`] (or a cheap always-on [`trace::CountingSink`]).
//! 2. Run the real encrypted computation; the sink observes one [`trace::HeOp`] per semantic
//!    operation, phase-marked with the labels of [`trace::phase`].
//! 3. Feed the recorded trace to [`accelerator::OpCostModel::cost_trace`] (or
//!    [`accelerator::OpCostModel::phase_costs`]) to get modelled FPGA cycles, NTT counts, HBM
//!    traffic and wall-clock time at any parameter set.
//!
//! ## Bootstrapping: one rotation schedule, planned then executed
//!
//! Bootstrapping (ModRaise → CoeffToSlot → EvalMod → SlotToCoeff) is organised around a
//! *plan → execute* flow. Every CoeffToSlot/SlotToCoeff stage carries a [`ckks::BsgsPlan`]:
//! the baby-step/giant-step regrouping of its diagonal offsets that FAB schedules on the
//! FPGA — the distinct baby rotations run as **one hoisted batch** sharing a single
//! key-switch Decomp→ModUp ([`ckks::Evaluator::rotate_hoisted_batch`]), each giant group pays
//! one full rotation, and the total drops from one key switch per diagonal to ~`2·√d`. The
//! *same plan object* then drives three views that the workspace tests pin together op for
//! op:
//!
//! * the **real execution** ([`ckks::Bootstrapper::bootstrap`]) on ciphertexts,
//! * the **planned trace** ([`ckks::Bootstrapper::predicted_trace`]) on `(level, scale)`
//!   shadows, and
//! * the **accelerator workload** ([`accelerator::workload::bootstrap_trace`]), which prices
//!   each stage from the structural offset sets without touching a polynomial.
//!
//! Sparsely-packed ciphertexts (messages in the first `s` slots, as `fab-lr` packs them) get
//! a real sparse-slot entry point: `BootstrapParams::sparse_for_scheme` inserts a SubSum
//! projection onto the packing subring and factors the tiled sub-FFT over `s` slots, so the
//! encrypted trainer's end-of-iteration refresh
//! ([`logistic_regression::EncryptedLogisticRegression::train_with_refresh`]) is recorded end
//! to end instead of being hand-approximated.
//!
//! Every software-faithful analytic trace has a *recorded counterpart test* asserting exact
//! per-phase agreement — see [`ckks::Bootstrapper::predicted_trace`] and
//! [`logistic_regression::planned_iteration_trace`].
//!
//! ## The numeric substrate: flat layout, lazy reduction, limb parallelism
//!
//! The software pipeline runs on a substrate engineered for throughput (PR 3–4):
//!
//! * **Flat limb-major polynomials** — [`rns::RnsPolynomial`] stores all limbs in one
//!   contiguous allocation (limb `i` at `data[i·N .. (i+1)·N]`), so kernels stream
//!   cache-line-contiguous rows and a polynomial is a single allocation.
//! * **Lazy-reduction NTT** — [`math::NttTable::forward`]/[`math::NttTable::inverse`] keep
//!   butterflies in the extended `[0, 2q)`/`[0, 4q)` domains with one correction pass at the
//!   end and the `N⁻¹` scaling fused into the last inverse stage; the eager seed transforms
//!   survive as `*_reference` baselines, pinned bit-for-bit by property tests.
//! * **Limb parallelism** — per-limb work (NTTs, basis-conversion targets, key-switch digit
//!   products) fans out over the dependency-free `fab-par` worker pool, gated by
//!   `FAB_THREADS` (default 1, so every run is deterministic; results are bitwise identical
//!   at any worker count).
//! * **Scratch-arena evaluator** — steady-state [`ckks::Evaluator`] operations
//!   (`multiply`, `key_switch`, `rotate_hoisted_batch`) lease all temporaries from a shared
//!   buffer pool and reuse cached per-level ModUp/ModDown plans, so the hot path stops
//!   allocating.
//! * **Transform-minimal lazy key switching** — the KSKIP inner product sums the raw
//!   128-bit products of all β digits into per-coefficient u128 accumulators and reduces
//!   *once* per coefficient ([`rns::kskip`]); ModUp + the forward NTTs run as one batched
//!   digit-parallel stage; hoisted rotation batches permute the once-transformed digits in
//!   evaluation domain ([`math::EvalAutomorphismMap`]) instead of re-transforming them; and
//!   `multiply_rescale` divides by `P·q_ℓ` in one fused ModDown+rescale conversion. NTT
//!   counts per operation are *verified*, not assumed: [`ckks::accounting`] holds the
//!   closed-form minimums and tests pin the [`rns::metering`] tallies to them. The PR 3
//!   eager algorithm survives as `Evaluator::key_switch_reference`, the timed baseline.
//!
//! The measured trajectory lives in the `BENCH_pr*.json` records at the repo root
//! (regenerate the kernel record with `cargo run --release -p fab-bench --bin kernels` and
//! the bytes-metered roofline with `--bin roofline`; `--bin summary` folds every record
//! into one table). Since PR 7 the same `rns::metering` counters also meter **bytes
//! moved** per kernel, pinned to closed-form `*_bytes` formulas in [`ckks::accounting`]
//! and calibrated against the accelerator memory model.
//!
//! ```
//! use fab::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fab::ckks::CkksError> {
//! let ctx = CkksContext::new_arc(CkksParams::testing())?;
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let keygen = KeyGenerator::new(ctx.clone(), sk.clone());
//! let encoder = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone(), keygen.public_key(&mut rng));
//! let rlk = keygen.relinearization_key(&mut rng);
//!
//! // Record a real encrypted computation...
//! let sink = RecordingSink::shared("session");
//! let evaluator = Evaluator::with_sink(ctx.clone(), sink.clone());
//! let scale = ctx.params().default_scale();
//! let x = encryptor.encrypt(&encoder.encode_real(&[1.0, 2.0], scale, 3)?, &mut rng)?;
//! let product = evaluator.multiply_rescale(&x, &x, &rlk)?;
//!
//! // ...and ask the accelerator model what it costs on FAB at the paper's parameters.
//! let trace = sink.take();
//! assert_eq!(trace.counts().multiply, 1);
//! let model = OpCostModel::new(FabConfig::alveo_u280(), CkksParams::fab_paper());
//! assert!(model.cost_trace(&trace).time_ms(&FabConfig::alveo_u280()) > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The RNS-CKKS scheme with hybrid key switching, bootstrapping, and the execute/plan seam.
pub use fab_ckks as ckks;
/// The FAB accelerator model (cost model, memory model, resources, design space, baselines).
pub use fab_core as accelerator;
/// Encrypted logistic regression (the paper's target application).
pub use fab_lr as logistic_regression;
/// Arithmetic substrate: modular arithmetic, NTT, special FFT, automorphisms.
pub use fab_math as math;
/// Residue-number-system substrate: bases, polynomials, basis conversion, ModUp/ModDown.
pub use fab_rns as rns;
/// Multi-tenant serving front-end with a trace-driven evaluation-key cache.
pub use fab_serve as serve;
/// Shared op vocabulary ([`trace::HeOp`], [`trace::OpTrace`]) and trace sinks.
pub use fab_trace as trace;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use fab_ckks::{
        Bootstrapper, Ciphertext, CkksContext, CkksParams, Decryptor, Encoder, Encryptor,
        EvalBackend, Evaluator, ExecBackend, GaloisKeys, KeyGenerator, Plaintext, PlanBackend,
        PlanCiphertext, PublicKey, RelinearizationKey, SecretKey,
    };
    pub use fab_core::{
        FabConfig, KeySwitchDatapath, MultiFpgaSystem, OpCost, OpCostModel, ResourceEstimator,
        TraceCost,
    };
    pub use fab_lr::{
        synthetic_mnist_like, EncryptedLogisticRegression, LogisticRegressionTrainer,
    };
    pub use fab_math::Complex64;
    pub use fab_serve::{
        EvalKeyCache, FabServer, Program, Request, ServeOp, ServerConfig, TenantId,
    };
    pub use fab_trace::{
        CountingSink, HeOp, NoopSink, OpCounts, OpTrace, RecordingSink, TraceSink,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let params = crate::ckks::CkksParams::fab_paper();
        assert_eq!(params.degree(), 1 << 16);
        let config = crate::accelerator::FabConfig::alveo_u280();
        assert_eq!(config.functional_units, 256);
        let data = crate::logistic_regression::synthetic_mnist_like(10, 4, 1);
        assert_eq!(data.len(), 10);
        assert!(crate::math::is_prime(65537));
        let sink = crate::trace::RecordingSink::new("wired");
        crate::trace::TraceSink::record(&sink, crate::trace::HeOp::Add { level: 1 });
        assert_eq!(sink.snapshot().len(), 1);
    }
}
